#include "modeling/search_space.hpp"

namespace extradeep::modeling {

std::vector<double> SearchSpace::default_poly_exponents() {
    // Extra-P's default exponent set, covering sublinear through cubic
    // growth with common fractional exponents.
    return {0.0,       1.0 / 4.0, 1.0 / 3.0, 1.0 / 2.0, 2.0 / 3.0,
            3.0 / 4.0, 1.0,       5.0 / 4.0, 4.0 / 3.0, 3.0 / 2.0,
            5.0 / 3.0, 7.0 / 4.0, 2.0,       9.0 / 4.0, 7.0 / 3.0,
            5.0 / 2.0, 8.0 / 3.0, 3.0};
}

std::vector<Factor> SearchSpace::single_parameter_factors(int param) const {
    std::vector<Factor> out;
    for (const double i : poly_exponents) {
        for (const int j : log_exponents) {
            if (i == 0.0 && j == 0) {
                continue;  // the constant is handled separately
            }
            Factor f;
            f.param = param;
            f.poly_exp = i;
            f.log_exp = j;
            out.push_back(f);
            if (include_negative_exponents && i != 0.0) {
                Factor neg = f;
                neg.poly_exp = -i;
                out.push_back(neg);
            }
        }
    }
    return out;
}

std::vector<std::vector<Term>> SearchSpace::single_parameter_hypotheses(
    int param) const {
    const std::vector<Factor> factors = single_parameter_factors(param);
    std::vector<std::vector<Term>> out;
    out.push_back({});  // constant-only hypothesis
    for (const auto& f : factors) {
        Term t;
        t.factors = {f};
        out.push_back({t});
    }
    if (max_terms >= 2) {
        for (std::size_t a = 0; a < factors.size(); ++a) {
            for (std::size_t b = a + 1; b < factors.size(); ++b) {
                Term t1;
                t1.factors = {factors[a]};
                Term t2;
                t2.factors = {factors[b]};
                out.push_back({t1, t2});
            }
        }
    }
    return out;
}

std::vector<std::vector<Term>> SearchSpace::multi_parameter_hypotheses(
    const std::vector<std::vector<Factor>>& best_factors) const {
    std::vector<std::vector<Term>> out;
    const std::size_t m = best_factors.size();
    if (m < 2) {
        return out;
    }
    // Cartesian product over per-parameter candidate factors; for each
    // combination emit an additive hypothesis (one term per parameter) and a
    // multiplicative one (a single joint term).
    std::vector<std::size_t> idx(m, 0);
    while (true) {
        std::vector<Term> additive;
        Term joint;
        bool any = false;
        for (std::size_t p = 0; p < m; ++p) {
            if (best_factors[p].empty()) {
                continue;
            }
            const Factor& f = best_factors[p][idx[p]];
            Term t;
            t.factors = {f};
            additive.push_back(t);
            joint.factors.push_back(f);
            any = true;
        }
        if (any) {
            out.push_back(additive);
            if (joint.factors.size() >= 2) {
                out.push_back({joint});
                // Mixed: joint term plus each single-parameter term.
                for (const auto& t : additive) {
                    out.push_back({joint, t});
                }
            }
        }
        // Advance the product counter.
        std::size_t p = 0;
        while (p < m) {
            if (best_factors[p].empty()) {
                ++p;
                continue;
            }
            if (++idx[p] < best_factors[p].size()) {
                break;
            }
            idx[p] = 0;
            ++p;
        }
        if (p == m) {
            break;
        }
    }
    return out;
}

}  // namespace extradeep::modeling
