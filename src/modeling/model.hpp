#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/linalg.hpp"

namespace extradeep::modeling {

/// One multiplicative factor of a PMNF term: x_l^i * log2(x_l)^j for
/// parameter index `param` (Eq. 5).
struct Factor {
    int param = 0;
    double poly_exp = 0.0;  ///< i, may be fractional (e.g. 2/3)
    int log_exp = 0;        ///< j

    /// Evaluates the factor at a parameter value (> 0 required when the
    /// factor actually uses the value).
    double evaluate(double value) const;

    /// Renders e.g. "x1^(2/3) * log2(x1)^2".
    std::string to_string(const std::string& param_name) const;

    bool operator==(const Factor&) const = default;
};

/// One PMNF term: coefficient times a product of per-parameter factors.
struct Term {
    double coefficient = 0.0;
    std::vector<Factor> factors;

    /// The term's basis value (product of factors, without the coefficient).
    double basis(std::span<const double> point) const;
    double evaluate(std::span<const double> point) const;
};

/// Goodness-of-fit summary of a selected model.
struct ModelQuality {
    double fit_smape = 0.0;   ///< SMAPE on the modeling points [%]
    double cv_smape = 0.0;    ///< leave-one-out cross-validated SMAPE [%]
    double r_squared = 0.0;
    double rss = 0.0;
    int hypotheses_searched = 0;
};

/// Bounds of a prediction interval.
struct PredictionInterval {
    double prediction = 0.0;
    double lower = 0.0;
    double upper = 0.0;
};

/// A fitted PMNF performance model (Eq. 5/7/12):
///   f(x) = c_0 + sum_k c_k * prod_l x_l^{i_kl} * log2(x_l)^{j_kl}.
/// Besides evaluation it supports prediction intervals (via the stored OLS
/// covariance) and asymptotic-growth comparison for bottleneck ranking
/// (paper Sec. 3.1).
class PerformanceModel {
public:
    PerformanceModel() = default;
    PerformanceModel(double constant, std::vector<Term> terms,
                     std::vector<std::string> param_names);

    double constant() const { return constant_; }
    const std::vector<Term>& terms() const { return terms_; }
    const ModelQuality& quality() const { return quality_; }
    const std::vector<std::string>& param_names() const { return param_names_; }

    /// Evaluates the model at a measurement point (one value per parameter).
    double evaluate(std::span<const double> point) const;
    /// Single-parameter convenience.
    double evaluate(double x) const;

    /// Two-sided prediction interval for a *new observation* at `point`:
    /// f(x) +- t* s sqrt(1 + b0' (X'X)^-1 b0). Requires the model to carry
    /// fit information (set by the ModelGenerator) and dof >= 1; otherwise
    /// the interval collapses to the prediction.
    PredictionInterval predict_interval(std::span<const double> point,
                                        double confidence = 0.95) const;
    PredictionInterval predict_interval(double x,
                                        double confidence = 0.95) const;

    /// Standard error of a *new observation* at `point`:
    /// s * sqrt(1 + b0' (X'X)^-1 b0) - the quantity predict_interval scales
    /// by the Student-t critical value. Returns 0 for models without fit
    /// info (degenerate fits: exact interpolation with n == k leaves dof <
    /// 1) and for zero-variance data (residual variance 0).
    double prediction_stddev(std::span<const double> point) const;
    double prediction_stddev(double x) const;

    /// Half-width of the two-sided prediction interval at `point`:
    /// t*(confidence, dof) * prediction_stddev. This is the adaptive
    /// planner's acquisition score; bit-identical to (upper - prediction)
    /// of predict_interval at the same point and confidence.
    double interval_half_width(std::span<const double> point,
                               double confidence = 0.95) const;
    double interval_half_width(double x, double confidence = 0.95) const;

    /// Scaled coefficient covariance s^2 (X'X)^-1 (row/col 0 is the
    /// constant, then terms in order). Empty (0x0) matrix when the model
    /// carries no fit info.
    linalg::Matrix coefficient_covariance() const;

    /// Dominant asymptotic growth in parameter `param`: the (poly_exp,
    /// log_exp) pair of the fastest-growing term with a positive
    /// coefficient; (0, 0) for constant or decaying models.
    std::pair<double, int> dominant_growth(int param = 0) const;

    /// Compares asymptotic growth in `param` against another model:
    /// negative = grows slower, 0 = same order, positive = grows faster.
    int compare_growth(const PerformanceModel& other, int param = 0) const;

    /// Big-O style rendering of the dominant growth, e.g. "O(x1^2 * log2(x1))".
    std::string growth_to_string(int param = 0) const;

    /// Human-readable model, e.g. "158.58 + 0.58 * x1^(2/3) * log2(x1)^2".
    std::string to_string() const;

    // Set by the ModelGenerator after fitting.
    void set_quality(const ModelQuality& q) { quality_ = q; }
    void set_fit_info(linalg::Matrix cov_unscaled, double residual_variance,
                      int degrees_of_freedom);

    // Fit-info accessors for exact serialization (src/serve): a persisted
    // model must reproduce predict_interval bit-for-bit, which requires the
    // raw OLS covariance, residual variance and degrees of freedom.
    bool has_fit_info() const { return has_fit_info_; }
    const linalg::Matrix& cov_unscaled() const { return cov_unscaled_; }
    double residual_variance() const { return residual_variance_; }
    int degrees_of_freedom() const { return dof_; }

private:
    double constant_ = 0.0;
    std::vector<Term> terms_;
    std::vector<std::string> param_names_ = {"x1"};
    ModelQuality quality_;
    // OLS information for prediction intervals.
    linalg::Matrix cov_unscaled_;
    double residual_variance_ = 0.0;
    int dof_ = 0;
    bool has_fit_info_ = false;
};

}  // namespace extradeep::modeling
