#pragma once

#include <string>
#include <vector>

#include "modeling/model.hpp"
#include "modeling/search_space.hpp"

namespace extradeep::modeling {

struct FitOptions {
    SearchSpace space;
    /// Minimum measurement points required per fit (paper Sec. 2.3: five
    /// points are the minimum to tell logarithmic, linear and polynomial
    /// growth apart).
    int min_points = 5;
    /// Mild parsimony bias: the selection score is
    /// cv_smape * (1 + term_penalty * #terms), so a more complex hypothesis
    /// must beat a simpler one by a margin.
    double term_penalty = 0.005;
    /// Number of best per-parameter factors combined into multi-parameter
    /// hypotheses.
    int multi_param_top_factors = 3;
    /// Threads used for the hypothesis search (and, in model_kernels, the
    /// per-kernel loop). 1 = serial; 0 or negative = hardware concurrency.
    /// The parallel search is bit-identical to the serial one: every
    /// hypothesis fit is an independent computation and the reduction breaks
    /// score ties by hypothesis index.
    int num_threads = 1;
};

/// Creates PMNF performance models from empirical measurements, following
/// Extra-P's methodology (paper Sec. 2.3.1): instantiate the PMNF with
/// exponents from the search space, fit coefficients by ordinary least
/// squares, and select the hypothesis with the smallest cross-validated
/// SMAPE (leave-one-out).
class ModelGenerator {
public:
    ModelGenerator() = default;
    explicit ModelGenerator(FitOptions options);

    const FitOptions& options() const { return options_; }

    /// Fits a model to measurement points with one or more parameters.
    /// `points[i]` holds the parameter values of measurement i (all the same
    /// dimension), `values[i]` the derived metric value (e.g. F_kernel per
    /// epoch). Throws InvalidArgumentError on inconsistent input or fewer
    /// than min_points measurements.
    PerformanceModel fit(const std::vector<std::vector<double>>& points,
                         const std::vector<double>& values,
                         std::vector<std::string> param_names = {"x1"}) const;

    /// Single-parameter convenience overload.
    PerformanceModel fit(const std::vector<double>& xs,
                         const std::vector<double>& ys,
                         const std::string& param_name = "x1") const;

private:
    FitOptions options_;
};

}  // namespace extradeep::modeling
