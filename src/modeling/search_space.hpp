#pragma once

#include <vector>

#include "modeling/model.hpp"

namespace extradeep::modeling {

/// Hypothesis search-space configuration for the PMNF (Eq. 5). The defaults
/// are Extra-P's standard exponent sets; they can be narrowed or widened by
/// the user to trade search cost against expressiveness.
struct SearchSpace {
    /// Polynomial exponents I (0 is allowed inside terms only when combined
    /// with a logarithm).
    std::vector<double> poly_exponents = default_poly_exponents();
    /// Logarithmic exponents J.
    std::vector<int> log_exponents = {0, 1, 2};
    /// Maximum number of non-constant terms per hypothesis (h in Eq. 5).
    /// Extra-P's default is a single term plus the constant; two-term
    /// hypotheses widen the space but overfit easily on five noisy points
    /// (see bench/ablation_modeling_points).
    int max_terms = 1;
    /// Also emit factors with negated polynomial exponents (x^-i). Required
    /// for strong-scaling metrics, where runtimes shrink like n_t ~ 1/x1
    /// (Eq. 2) - a shape the positive-exponent PMNF cannot express. Enabled
    /// automatically by the ExperimentRunner for strong-scaling experiments.
    bool include_negative_exponents = false;

    static std::vector<double> default_poly_exponents();

    /// All distinct single-parameter factors x^i log2(x)^j with
    /// (i, j) != (0, 0), for parameter index `param`.
    std::vector<Factor> single_parameter_factors(int param) const;

    /// All hypotheses for a single-parameter model: the constant-only
    /// hypothesis (empty term list), all 1-term hypotheses, and, when
    /// max_terms >= 2, all unordered 2-term combinations. Each hypothesis is
    /// a list of terms whose coefficients are still to be fitted.
    std::vector<std::vector<Term>> single_parameter_hypotheses(int param) const;

    /// Multi-parameter hypotheses built from the best per-parameter factors
    /// (Extra-P's heuristic): additive combinations (one term per parameter)
    /// and multiplicative combinations (one term joining all parameters).
    /// `best_factors[p]` are candidate factors for parameter p.
    std::vector<std::vector<Term>> multi_parameter_hypotheses(
        const std::vector<std::vector<Factor>>& best_factors) const;
};

}  // namespace extradeep::modeling
