#include "advisor/whatif.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "parallel/comm_plan.hpp"
#include "sim/kernel_schedule.hpp"

namespace extradeep::advisor {

namespace {

using trace::Phase;

constexpr int kComp = static_cast<int>(Phase::Computation);
constexpr int kComm = static_cast<int>(Phase::Communication);

double clamp_nonneg(double v) { return v > 0.0 ? v : 0.0; }

/// Deterministic per-step communication cost of a comm-op list on `w`'s
/// system (per_step_count-weighted sum of priced operations).
double priced_comm_total(const sim::Workload& w,
                         const std::vector<parallel::CommOp>& ops) {
    double total = 0.0;
    for (const auto& op : ops) {
        total += sim::price_comm(w, op).time *
                 static_cast<double>(op.per_step_count);
    }
    return total;
}

/// Communication scale factors (train, val) of a scenario's hardware-side
/// transforms. Uniform link scaling is exact for *any* model without
/// reconstruction; everything else reprices the reconstructed communication
/// plan under the mutated system.
struct CommScale {
    double train = 1.0;
    double val = 1.0;
};

CommScale comm_scale(const ModelSet& ms, int ranks, const Scenario& sc) {
    CommScale s;
    if (sc.latency_factor() == 1.0 && sc.bandwidth_factor() == 1.0 &&
        sc.collective == CollectiveAlgo::None) {
        return s;  // communication untouched
    }
    if (sc.is_uniform_link_scaling()) {
        // alpha/f and beta*f scale every alpha-beta closed form (and the
        // multiplicative contention/regime factors on top) by exactly 1/f.
        s.train = s.val = 1.0 / sc.latency_factor();
        return s;
    }
    const sim::Workload base = reconstruct_workload(ms, ranks);
    sim::Workload mutated = base;
    mutated.system = mutate_system(base.system, sc);
    const parallel::CommPlan plan = parallel::build_comm_plan(
        base.app.network, base.parallel, base.batch_per_worker);
    const double cur_t = priced_comm_total(base, plan.train_ops);
    const double alt_t = priced_comm_total(mutated, plan.train_ops);
    const double cur_v = priced_comm_total(base, plan.val_ops);
    const double alt_v = priced_comm_total(mutated, plan.val_ops);
    s.train = cur_t > 0.0 ? alt_t / cur_t : 1.0;
    s.val = cur_v > 0.0 ? alt_v / cur_v : 1.0;
    return s;
}

/// Per-step launch-overhead saving (train, val) of fusing the top-k on-GPU
/// compute kernels of the reconstructed schedule: every saved launch drops
/// one cudaLaunchKernel call and one framework dispatch.
struct FusionSaving {
    double train = 0.0;
    double val = 0.0;
    /// Saved launches (for the ground-truth mirror and tests).
    std::int64_t train_launches = 0;
    std::int64_t val_launches = 0;
};

FusionSaving fusion_saving(const sim::StepSchedule& schedule, int k) {
    FusionSaving out;
    if (k < 2) {
        return out;
    }
    std::vector<const sim::KernelDesc*> candidates;
    for (const auto& kd : schedule.kernels) {
        if (kd.on_gpu &&
            trace::phase_of(kd.category) == Phase::Computation) {
            candidates.push_back(&kd);
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const sim::KernelDesc* a, const sim::KernelDesc* b) {
                  if (a->train_time != b->train_time) {
                      return a->train_time > b->train_time;
                  }
                  return a->name < b->name;
              });
    if (candidates.size() > static_cast<std::size_t>(k)) {
        candidates.resize(static_cast<std::size_t>(k));
    }
    if (candidates.size() < 2) {
        return out;
    }
    std::int64_t train_visits = 0;
    std::int64_t val_visits = 0;
    for (const auto* kd : candidates) {
        train_visits += kd->train_visits;
        val_visits += kd->val_visits;
    }
    out.train_launches = std::max<std::int64_t>(0, train_visits - 1);
    out.val_launches = std::max<std::int64_t>(0, val_visits - 1);

    double launch_pv_t = 0.0, launch_pv_v = 0.0;
    double dispatch_pv_t = 0.0, dispatch_pv_v = 0.0;
    for (const auto& kd : schedule.kernels) {
        if (kd.name == "cudaLaunchKernel") {
            if (kd.train_visits > 0) {
                launch_pv_t = kd.train_time /
                              static_cast<double>(kd.train_visits);
            }
            if (kd.val_visits > 0) {
                launch_pv_v = kd.val_time /
                              static_cast<double>(kd.val_visits);
            }
        } else if (kd.name == "ExecutorState::Process" ||
                   kd.name == "aten::dispatch") {
            if (kd.train_visits > 0) {
                dispatch_pv_t = kd.train_time /
                                static_cast<double>(kd.train_visits);
            }
            if (kd.val_visits > 0) {
                dispatch_pv_v = kd.val_time /
                                static_cast<double>(kd.val_visits);
            }
        }
    }
    out.train = static_cast<double>(out.train_launches) *
                (launch_pv_t + dispatch_pv_t);
    out.val = static_cast<double>(out.val_launches) *
              (launch_pv_v + dispatch_pv_v);
    return out;
}

double interval_half_width(const EpochModel& model, double x) {
    const modeling::PredictionInterval pi = model.predict_interval(x);
    return (pi.upper - pi.lower) * 0.5;
}

}  // namespace

ModelSet model_set_from(const ExperimentSpec& spec,
                        const ExperimentResult& result) {
    ModelSet ms;
    ms.dataset = spec.dataset;
    ms.system_name = spec.system.name;
    ms.strategy = spec.strategy;
    ms.scaling = spec.scaling;
    ms.batch_per_worker = spec.batch_per_worker;
    ms.model_parallel_degree =
        spec.strategy == parallel::StrategyKind::Data
            ? 1
            : spec.model_parallel_degree;
    ms.epoch_time = result.epoch_time;
    ms.phase_time = result.phase_time;
    ms.step_math = result.step_math_fn;
    return ms;
}

hw::SystemSpec system_preset(const std::string& name) {
    if (name == "DEEP") {
        return hw::SystemSpec::deep();
    }
    if (name == "JURECA") {
        return hw::SystemSpec::jureca();
    }
    throw InvalidArgumentError("whatif: unknown system '" + name +
                               "' (no preset to reconstruct)");
}

sim::Workload reconstruct_workload(const ModelSet& ms, int ranks) {
    parallel::ParallelConfig config;
    switch (ms.strategy) {
        case parallel::StrategyKind::Data:
            config = parallel::ParallelConfig::data(ranks);
            break;
        case parallel::StrategyKind::Tensor:
            config = parallel::ParallelConfig::tensor(
                ranks, ms.model_parallel_degree);
            break;
        case parallel::StrategyKind::Pipeline:
            config = parallel::ParallelConfig::pipeline(
                ranks, ms.model_parallel_degree);
            break;
    }
    return sim::Workload::make(ms.dataset, system_preset(ms.system_name),
                               config, ms.scaling, ms.batch_per_worker);
}

hw::SystemSpec mutate_system(const hw::SystemSpec& sys, const Scenario& sc) {
    hw::SystemSpec out = sys;
    const double lat = sc.latency_factor();
    const double bw = sc.bandwidth_factor();
    out.inter_node.latency_s /= lat;
    out.inter_node.bandwidth_gbs *= bw;
    out.intra_node.latency_s /= lat;
    out.intra_node.bandwidth_gbs *= bw;
    if (sc.collective == CollectiveAlgo::Ring) {
        out.collective_override = hw::CollectiveOverride::Ring;
    } else if (sc.collective == CollectiveAlgo::Tree) {
        out.collective_override = hw::CollectiveOverride::Tree;
    }
    return out;
}

WhatIfResult evaluate_whatif(const ModelSet& ms, double x,
                             const Scenario& sc) {
    if (!std::isfinite(x) || x < 2.0) {
        throw InvalidArgumentError(
            "whatif: rank count must be >= 2 (single-process runs are out of "
            "scope)");
    }
    if (!ms.step_math) {
        throw InvalidArgumentError("whatif: model set has no step math");
    }
    const int ranks = static_cast<int>(std::llround(x));
    const parallel::StepMath sm = ms.step_math(ranks);
    const double n_t = static_cast<double>(sm.train_steps);
    const double n_v = static_cast<double>(sm.val_steps);

    WhatIfResult out;
    out.spec = sc.canonical_spec();
    out.baseline = ms.epoch_time.evaluate(x);

    // Per-step phase predictions (clamped: a fitted model may dip below 0).
    const double comm_t = clamp_nonneg(
        ms.phase_time[kComm].train_step_model().evaluate(x));
    const double comm_v = clamp_nonneg(
        ms.phase_time[kComm].val_step_model().evaluate(x));
    const double comp_t = clamp_nonneg(
        ms.phase_time[kComp].train_step_model().evaluate(x));
    const double comp_v = clamp_nonneg(
        ms.phase_time[kComp].val_step_model().evaluate(x));

    // (a) interconnect / collective swap: scale the communication share.
    const CommScale s = comm_scale(ms, ranks, sc);
    const double comm2_t = comm_t * s.train;
    const double comm2_v = comm_v * s.val;

    // (d) kernel fusion: drop launch + dispatch overhead from compute.
    FusionSaving fusion;
    if (sc.fuse >= 2) {
        fusion = fusion_saving(
            sim::build_step_schedule(reconstruct_workload(ms, ranks)),
            sc.fuse);
        fusion.train = std::min(fusion.train, comp_t);
        fusion.val = std::min(fusion.val, comp_v);
    }
    const double comp2_t = comp_t - fusion.train;
    const double comp2_v = comp_v - fusion.val;

    // (b) overlap: hide up to the overlap fraction of the (already
    // transformed) communication under the remaining computation.
    const double hidden_t = std::min(sc.overlap * comm2_t, comp2_t);
    const double hidden_v = std::min(sc.overlap * comm2_v, comp2_v);

    const double step_saving_t = (comm_t - comm2_t) + fusion.train + hidden_t;
    const double step_saving_v = (comm_v - comm2_v) + fusion.val + hidden_v;
    out.saving = n_t * step_saving_t + n_v * step_saving_v;
    out.scenario_time = out.baseline - out.saving;

    // Uncertainty: each saving component inherits the relative prediction
    // uncertainty of the phase model it was derived from; components add in
    // quadrature (independent fits).
    const double comm_epoch = clamp_nonneg(ms.phase_time[kComm].evaluate(x));
    const double comp_epoch = clamp_nonneg(ms.phase_time[kComp].evaluate(x));
    const double rel_comm =
        comm_epoch > 0.0
            ? interval_half_width(ms.phase_time[kComm], x) / comm_epoch
            : 0.0;
    const double rel_comp =
        comp_epoch > 0.0
            ? interval_half_width(ms.phase_time[kComp], x) / comp_epoch
            : 0.0;
    const double comm_saving_epoch =
        n_t * (comm_t - comm2_t) + n_v * (comm_v - comm2_v);
    const double fusion_epoch = n_t * fusion.train + n_v * fusion.val;
    const double hidden_epoch = n_t * hidden_t + n_v * hidden_v;
    const double u_comm = std::fabs(comm_saving_epoch) * rel_comm;
    const double u_fuse = fusion_epoch * rel_comp;
    const double u_hide = hidden_epoch * std::max(rel_comm, rel_comp);
    const double u = std::sqrt(u_comm * u_comm + u_fuse * u_fuse +
                               u_hide * u_hide);
    out.lower = out.saving - u;
    out.upper = out.saving + u;
    return out;
}

std::vector<std::string> default_portfolio() {
    return {
        "interconnect:2",
        "latency:4",
        "bandwidth:2",
        "overlap:0.5",
        "collective:ring",
        "collective:tree",
        "fuse:4",
        "interconnect:2+overlap:0.5",
    };
}

Advice advise(const ModelSet& ms, double x, std::size_t top) {
    Advice advice;
    for (const std::string& spec : default_portfolio()) {
        try {
            advice.ranked.push_back(
                evaluate_whatif(ms, x, parse_scenario(spec)));
        } catch (const Error&) {
            ++advice.skipped;
        }
    }
    std::sort(advice.ranked.begin(), advice.ranked.end(),
              [](const WhatIfResult& a, const WhatIfResult& b) {
                  if (a.saving != b.saving) {
                      return a.saving > b.saving;
                  }
                  return a.spec < b.spec;
              });
    if (top > 0 && advice.ranked.size() > top) {
        advice.ranked.resize(top);
    }
    return advice;
}

}  // namespace extradeep::advisor
