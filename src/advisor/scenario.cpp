#include "advisor/scenario.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/format.hpp"

namespace extradeep::advisor {

namespace {

double factor_value(const std::string& value, const std::string& name) {
    double v = 0.0;
    if (!fmt::parse_double(value, v) || !std::isfinite(v) || v <= 0.0) {
        throw InvalidArgumentError("scenario: " + name +
                                   " needs a positive finite factor, got '" +
                                   value + "'");
    }
    return v;
}

void apply_token(Scenario& sc, const std::string& token) {
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= token.size()) {
        throw InvalidArgumentError("scenario: transform must be name:value, "
                                   "got '" + token + "'");
    }
    const std::string name = token.substr(0, colon);
    const std::string value = token.substr(colon + 1);
    if (name == "interconnect") {
        sc.interconnect *= factor_value(value, name);
    } else if (name == "latency") {
        sc.latency *= factor_value(value, name);
    } else if (name == "bandwidth") {
        sc.bandwidth *= factor_value(value, name);
    } else if (name == "overlap") {
        double f = 0.0;
        if (!fmt::parse_double(value, f) || !std::isfinite(f) || f < 0.0 ||
            f > 1.0) {
            throw InvalidArgumentError(
                "scenario: overlap needs a fraction in [0, 1], got '" + value +
                "'");
        }
        // Overlapping fractions compose on the *remaining* visible share, so
        // composition is commutative and overlap:0 is an exact no-op.
        sc.overlap = 1.0 - (1.0 - sc.overlap) * (1.0 - f);
    } else if (name == "collective") {
        CollectiveAlgo algo = CollectiveAlgo::None;
        if (value == "ring") {
            algo = CollectiveAlgo::Ring;
        } else if (value == "tree") {
            algo = CollectiveAlgo::Tree;
        } else {
            throw InvalidArgumentError(
                "scenario: collective must be ring or tree, got '" + value +
                "'");
        }
        if (sc.collective != CollectiveAlgo::None && sc.collective != algo) {
            throw InvalidArgumentError(
                "scenario: conflicting collective algorithms");
        }
        sc.collective = algo;
    } else if (name == "fuse") {
        double k = 0.0;
        if (!fmt::parse_double(value, k) || !std::isfinite(k) || k < 0.0 ||
            k != std::floor(k) || k > 1e6) {
            throw InvalidArgumentError(
                "scenario: fuse needs a non-negative integer k, got '" +
                value + "'");
        }
        sc.fuse = std::max(sc.fuse, static_cast<int>(k));
    } else {
        throw InvalidArgumentError("scenario: unknown transform '" + name +
                                   "'");
    }
}

}  // namespace

bool Scenario::is_identity() const {
    return interconnect == 1.0 && latency == 1.0 && bandwidth == 1.0 &&
           overlap == 0.0 && collective == CollectiveAlgo::None && fuse < 2;
}

bool Scenario::is_uniform_link_scaling() const {
    return latency_factor() == bandwidth_factor() &&
           collective == CollectiveAlgo::None;
}

std::string Scenario::canonical_spec() const {
    std::vector<std::string> parts;
    if (collective == CollectiveAlgo::Ring) {
        parts.push_back("collective:ring");
    } else if (collective == CollectiveAlgo::Tree) {
        parts.push_back("collective:tree");
    }
    if (interconnect != 1.0) {
        parts.push_back("interconnect:" + fmt::shortest(interconnect));
    }
    if (latency != 1.0) {
        parts.push_back("latency:" + fmt::shortest(latency));
    }
    if (bandwidth != 1.0) {
        parts.push_back("bandwidth:" + fmt::shortest(bandwidth));
    }
    if (overlap != 0.0) {
        parts.push_back("overlap:" + fmt::shortest(overlap));
    }
    if (fuse >= 2) {
        parts.push_back("fuse:" + std::to_string(fuse));
    }
    if (parts.empty()) {
        return "identity";
    }
    std::ostringstream os;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) {
            os << '+';
        }
        os << parts[i];
    }
    return os.str();
}

Scenario parse_scenario(const std::string& spec) {
    if (spec.empty()) {
        throw InvalidArgumentError("scenario: empty specification");
    }
    Scenario sc;
    if (spec == "identity") {
        return sc;
    }
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t plus = spec.find('+', pos);
        const std::string token =
            spec.substr(pos, plus == std::string::npos ? std::string::npos
                                                       : plus - pos);
        if (token.empty()) {
            throw InvalidArgumentError("scenario: empty transform in '" +
                                       spec + "'");
        }
        apply_token(sc, token);
        if (plus == std::string::npos) {
            break;
        }
        pos = plus + 1;
    }
    if (!std::isfinite(sc.interconnect) || !std::isfinite(sc.latency) ||
        !std::isfinite(sc.bandwidth) || sc.interconnect <= 0.0 ||
        sc.latency <= 0.0 || sc.bandwidth <= 0.0) {
        throw InvalidArgumentError(
            "scenario: combined link factors out of range");
    }
    return sc;
}

}  // namespace extradeep::advisor
