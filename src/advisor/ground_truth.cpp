#include "advisor/ground_truth.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "advisor/whatif.hpp"
#include "common/error.hpp"
#include "profiling/profiler.hpp"
#include "sim/simulator.hpp"
#include "trace/kernel.hpp"

namespace extradeep::advisor {

namespace {

using trace::Phase;

/// Seed salt of the what-if ground-truth runs: independent of both the
/// profiled runs and the runner's evaluation measurements, so verification
/// never scores the advisor on the noise realisations the models were
/// fitted on.
constexpr std::uint64_t kWhatIfSeedSalt = 0x57494654ULL;  // "WIFT"

double median(std::vector<double> values) {
    if (values.empty()) {
        throw InvalidArgumentError("median: empty sample");
    }
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// Merges the top-k on-GPU compute kernels in place (selection identical to
/// the advisor's fusion_saving: train_time descending, name ascending) and
/// shrinks the launch/dispatch kernels by the saved launches.
void apply_fusion(sim::StepSchedule& schedule, int k) {
    if (k < 2) {
        return;
    }
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < schedule.kernels.size(); ++i) {
        const sim::KernelDesc& kd = schedule.kernels[i];
        if (kd.on_gpu &&
            trace::phase_of(kd.category) == Phase::Computation) {
            candidates.push_back(i);
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&schedule](std::size_t a, std::size_t b) {
                  const sim::KernelDesc& ka = schedule.kernels[a];
                  const sim::KernelDesc& kb = schedule.kernels[b];
                  if (ka.train_time != kb.train_time) {
                      return ka.train_time > kb.train_time;
                  }
                  return ka.name < kb.name;
              });
    if (candidates.size() > static_cast<std::size_t>(k)) {
        candidates.resize(static_cast<std::size_t>(k));
    }
    if (candidates.size() < 2) {
        return;
    }

    // Accumulate the constituents into the largest one's slot; zero the
    // rest. The merged kernel launches once per step.
    sim::KernelDesc merged = schedule.kernels[candidates[0]];
    std::int64_t train_visits = 0;
    std::int64_t val_visits = 0;
    for (std::size_t j = 1; j < candidates.size(); ++j) {
        const sim::KernelDesc& kd = schedule.kernels[candidates[j]];
        merged.train_time += kd.train_time;
        merged.val_time += kd.val_time;
        merged.train_bytes += kd.train_bytes;
        merged.val_bytes += kd.val_bytes;
    }
    for (const std::size_t i : candidates) {
        train_visits += schedule.kernels[i].train_visits;
        val_visits += schedule.kernels[i].val_visits;
    }
    merged.train_visits = train_visits > 0 ? 1 : 0;
    merged.val_visits = val_visits > 0 ? 1 : 0;
    const std::int64_t saved_t =
        std::max<std::int64_t>(0, train_visits - merged.train_visits);
    const std::int64_t saved_v =
        std::max<std::int64_t>(0, val_visits - merged.val_visits);
    schedule.kernels[candidates[0]] = std::move(merged);
    for (std::size_t j = 1; j < candidates.size(); ++j) {
        sim::KernelDesc& kd = schedule.kernels[candidates[j]];
        kd.train_time = 0.0;
        kd.val_time = 0.0;
        kd.train_bytes = 0.0;
        kd.val_bytes = 0.0;
        kd.train_visits = 0;
        kd.val_visits = 0;
    }

    // Every saved launch drops one cudaLaunchKernel call and one framework
    // dispatch — the per-launch overheads fusion exists to eliminate.
    for (auto& kd : schedule.kernels) {
        if (kd.name != "cudaLaunchKernel" &&
            kd.name != "ExecutorState::Process" &&
            kd.name != "aten::dispatch") {
            continue;
        }
        if (kd.train_visits > 0) {
            const double pv =
                kd.train_time / static_cast<double>(kd.train_visits);
            const std::int64_t cut = std::min(saved_t, kd.train_visits);
            kd.train_time -= pv * static_cast<double>(cut);
            kd.train_visits -= cut;
        }
        if (kd.val_visits > 0) {
            const double pv =
                kd.val_time / static_cast<double>(kd.val_visits);
            const std::int64_t cut = std::min(saved_v, kd.val_visits);
            kd.val_time -= pv * static_cast<double>(cut);
            kd.val_visits -= cut;
        }
    }
}

/// Scales every communication kernel so that `fraction` of the per-step
/// communication time is hidden under the step's computation (capped at the
/// available computation).
void apply_overlap(sim::StepSchedule& schedule, double fraction) {
    if (fraction <= 0.0) {
        return;
    }
    double comm_t = 0.0, comm_v = 0.0, comp_t = 0.0, comp_v = 0.0;
    for (const auto& kd : schedule.kernels) {
        switch (trace::phase_of(kd.category)) {
            case Phase::Communication:
                comm_t += kd.train_time;
                comm_v += kd.val_time;
                break;
            case Phase::Computation:
                comp_t += kd.train_time;
                comp_v += kd.val_time;
                break;
            case Phase::MemoryOp:
                break;
        }
    }
    const double hidden_t = std::min(fraction * comm_t, comp_t);
    const double hidden_v = std::min(fraction * comm_v, comp_v);
    const double scale_t = comm_t > 0.0 ? (comm_t - hidden_t) / comm_t : 1.0;
    const double scale_v = comm_v > 0.0 ? (comm_v - hidden_v) / comm_v : 1.0;
    for (auto& kd : schedule.kernels) {
        if (trace::phase_of(kd.category) == Phase::Communication) {
            kd.train_time *= scale_t;
            kd.val_time *= scale_v;
        }
    }
}

}  // namespace

sim::StepSchedule mutated_schedule(const sim::Workload& base,
                                   const Scenario& sc) {
    sim::Workload mutated = base;
    mutated.system = mutate_system(base.system, sc);
    sim::StepSchedule schedule = sim::build_step_schedule(mutated);
    apply_fusion(schedule, sc.fuse);
    apply_overlap(schedule, sc.overlap);
    return schedule;
}

GroundTruth simulate_saving(const sim::Workload& base, const Scenario& sc,
                            int repetitions, std::uint64_t seed) {
    if (repetitions < 1) {
        throw InvalidArgumentError("simulate_saving: repetitions must be >= 1");
    }
    const sim::TrainingSimulator base_sim(base);
    const sim::TrainingSimulator scen_sim(base, mutated_schedule(base, sc));
    const std::map<std::string, double> params{
        {"x1", static_cast<double>(base.parallel.total_ranks)}};
    std::vector<double> base_walls, scen_walls, savings;
    base_walls.reserve(repetitions);
    scen_walls.reserve(repetitions);
    savings.reserve(repetitions);
    for (int rep = 0; rep < repetitions; ++rep) {
        const std::uint64_t run_seed =
            profiling::run_seed_for(params, rep, seed ^ kWhatIfSeedSalt);
        const double b = base_sim.measure_epoch_wall(run_seed);
        const double m = scen_sim.measure_epoch_wall(run_seed);
        base_walls.push_back(b);
        scen_walls.push_back(m);
        savings.push_back(b - m);
    }
    GroundTruth out;
    out.base_time = median(base_walls);
    out.scenario_time = median(scen_walls);
    out.saving = median(savings);
    return out;
}

}  // namespace extradeep::advisor
