#pragma once

#include <string>

namespace extradeep::advisor {

/// Collective-algorithm choice of a scenario's `collective:` transform.
/// `None` keeps the system's automatic selection.
enum class CollectiveAlgo { None, Ring, Tree };

/// A canonical what-if scenario: the reduced form of a '+'-joined list of
/// transform tokens (see parse_scenario). Every field is a *combined*
/// magnitude, so two specs that are permutations of each other reduce to the
/// same Scenario — the representation itself guarantees the advisor's
/// order-independence property for commutative transforms.
struct Scenario {
    /// Interconnect upgrade factor f: every link's latency is divided by f
    /// and its bandwidth multiplied by f. 1.0 = no change.
    double interconnect = 1.0;
    /// Latency-only improvement factor (alpha / f). 1.0 = no change.
    double latency = 1.0;
    /// Bandwidth-only improvement factor (beta * f). 1.0 = no change.
    double bandwidth = 1.0;
    /// Fraction of communication hidden under computation, in [0, 1].
    double overlap = 0.0;
    /// Pinned gradient-allreduce algorithm (collective swap).
    CollectiveAlgo collective = CollectiveAlgo::None;
    /// Fuse the top-k compute kernels into one launch; k < 2 is a no-op.
    int fuse = 0;

    /// True when the scenario changes nothing (all magnitudes neutral).
    bool is_identity() const;

    /// True when the effective latency and bandwidth factors are equal, the
    /// algorithm is untouched, and no fusion applies — the case where every
    /// communication closed form scales by exactly 1/factor.
    bool is_uniform_link_scaling() const;

    /// Combined latency improvement factor (interconnect * latency).
    double latency_factor() const { return interconnect * latency; }
    /// Combined bandwidth improvement factor (interconnect * bandwidth).
    double bandwidth_factor() const { return interconnect * bandwidth; }

    /// Canonical single-token rendering, e.g. "interconnect:2+overlap:0.5";
    /// "identity" when is_identity(). Parsing the result reproduces the
    /// Scenario exactly.
    std::string canonical_spec() const;
};

/// Parses a scenario specification: one or more `name:value` transforms
/// joined by '+'. Supported transforms:
///   interconnect:<f>   f > 0, scales every link (alpha/f, beta*f)
///   latency:<f>        f > 0, scales link latencies only (alpha/f)
///   bandwidth:<f>      f > 0, scales link bandwidths only (beta*f)
///   overlap:<f>        f in [0, 1], hides f of comm under compute
///   collective:<algo>  ring | tree, pins the allreduce algorithm
///   fuse:<k>           k >= 0, fuses the top-k compute kernels
/// Repeated transforms compose: factors multiply, overlap fractions combine
/// as 1 - (1-a)(1-b), fuse takes the maximum k. Conflicting collective
/// algorithms, unknown names, and out-of-range values throw
/// InvalidArgumentError.
Scenario parse_scenario(const std::string& spec);

}  // namespace extradeep::advisor
