#include "advisor/verify.hpp"

#include <cmath>
#include <sstream>

#include "advisor/ground_truth.hpp"
#include "advisor/whatif.hpp"
#include "common/format.hpp"
#include "common/json.hpp"
#include "extradeep/runner.hpp"

namespace extradeep::advisor {

namespace {

struct VerifyCase {
    std::string name;
    ExperimentSpec spec;
};

std::vector<VerifyCase> make_cases(const VerifyOptions& options) {
    ExperimentSpec base;
    base.seed = options.seed;
    base.fit_threads = options.fit_threads;
    base.repetitions = 3;
    std::vector<VerifyCase> cases;
    cases.push_back({"cifar10-deep-weak", base});
    if (!options.quick) {
        ExperimentSpec strong = base;
        strong.scaling = parallel::ScalingMode::Strong;
        cases.push_back({"cifar10-deep-strong", strong});
        ExperimentSpec jureca = base;
        jureca.system = hw::SystemSpec::jureca();
        cases.push_back({"cifar10-jureca-weak", jureca});
    }
    return cases;
}

struct ScenarioRow {
    WhatIfResult pred;
    GroundTruth truth;
};

/// Relative saving error [%], floored at 2 % of the baseline epoch time so
/// near-zero true savings do not blow the ratio up.
double saving_err_pct(const ScenarioRow& row) {
    const double denom = std::max(std::fabs(row.truth.saving),
                                  0.02 * row.truth.base_time);
    return 100.0 * std::fabs(row.pred.saving - row.truth.saving) / denom;
}

bool intervals_disjoint(const WhatIfResult& a, const WhatIfResult& b) {
    return a.lower > b.upper || b.lower > a.upper;
}

}  // namespace

VerifyOutcome run_verify(const VerifyOptions& options) {
    const int reps = options.repetitions > 0 ? options.repetitions : 5;
    const std::vector<int> eval_ranks = {8, 16};
    VerifyOutcome out;
    std::ostringstream table;
    table << "what-if verification (reps=" << reps << ", seed="
          << options.seed << ")\n";

    for (const VerifyCase& vc : make_cases(options)) {
        const ExperimentRunner runner(vc.spec);
        const ExperimentResult result = runner.run();
        const ModelSet ms = model_set_from(vc.spec, result);

        for (const int ranks : eval_ranks) {
            const double x = static_cast<double>(ranks);
            const sim::Workload workload = runner.workload_for(ranks);
            std::vector<ScenarioRow> rows;
            for (const std::string& spec : default_portfolio()) {
                const Scenario sc = parse_scenario(spec);
                ScenarioRow row;
                row.pred = evaluate_whatif(ms, x, sc);
                row.truth =
                    simulate_saving(workload, sc, reps, options.seed);
                rows.push_back(std::move(row));
            }

            const std::string point =
                vc.name + "/x=" + std::to_string(ranks);
            table << "  " << point << " (base true="
                  << fmt::shortest(rows.front().truth.base_time) << " s)\n";
            std::size_t covered = 0;
            for (const ScenarioRow& row : rows) {
                const double err = saving_err_pct(row);
                const bool cover = row.truth.saving >= row.pred.lower &&
                                   row.truth.saving <= row.pred.upper;
                covered += cover ? 1 : 0;
                out.records.push_back(eval::MetricRecord{
                    point + "/" + row.pred.spec, 0.0, "saving_err_pct", err,
                    options.seed});
                table << "    " << row.pred.spec << ": pred="
                      << fmt::shortest(row.pred.saving) << " ["
                      << fmt::shortest(row.pred.lower) << ", "
                      << fmt::shortest(row.pred.upper) << "] true="
                      << fmt::shortest(row.truth.saving) << " err="
                      << fmt::shortest(err) << "%"
                      << (cover ? "" : " (outside interval)") << "\n";
            }

            // Ranking concordance over pairs the advisor claims to decide
            // (disjoint prediction intervals). Overlapping pairs are ties by
            // contract and never counted against the advisor.
            std::size_t decided = 0;
            std::size_t concordant = 0;
            for (std::size_t i = 0; i < rows.size(); ++i) {
                for (std::size_t j = i + 1; j < rows.size(); ++j) {
                    if (!intervals_disjoint(rows[i].pred, rows[j].pred)) {
                        continue;
                    }
                    ++decided;
                    const double dp =
                        rows[i].pred.saving - rows[j].pred.saving;
                    const double dt =
                        rows[i].truth.saving - rows[j].truth.saving;
                    if ((dp > 0.0 && dt > 0.0) || (dp < 0.0 && dt < 0.0)) {
                        ++concordant;
                    }
                }
            }
            const double agreement =
                decided == 0
                    ? 1.0
                    : static_cast<double>(concordant) /
                          static_cast<double>(decided);
            out.records.push_back(eval::MetricRecord{
                point, 0.0, "ranking_agreement", agreement, options.seed});
            out.records.push_back(eval::MetricRecord{
                point, 0.0, "interval_coverage",
                static_cast<double>(covered) /
                    static_cast<double>(rows.size()),
                options.seed});
            table << "    ranking_agreement=" << fmt::shortest(agreement)
                  << " (" << concordant << "/" << decided
                  << " decided pairs), interval_coverage="
                  << fmt::shortest(static_cast<double>(covered) /
                                   static_cast<double>(rows.size()))
                  << "\n";
        }
    }
    out.table = table.str();
    return out;
}

std::string whatif_bench_json(const std::vector<eval::MetricRecord>& records,
                              const std::string& git_rev) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"extradeep-whatif/1\",\n";
    os << "  \"git_rev\": " << json::quote(git_rev) << ",\n";
    os << "  \"records\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const eval::MetricRecord& r = records[i];
        os << "    {\"case\": " << json::quote(r.case_name)
           << ", \"noise\": " << json::number(r.noise)
           << ", \"metric\": " << json::quote(r.metric)
           << ", \"value\": " << json::number(r.value)
           << ", \"seed\": " << r.seed << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

}  // namespace extradeep::advisor
