// extradeep-advisor: the what-if ground-truth verification harness.
//
// Fits the per-case models, evaluates the default what-if portfolio at an
// interpolation and an extrapolation point, re-simulates every scenario
// against the mutated simulator (the oracle), and scores the advisor's
// predicted savings, ranking concordance, and interval coverage. Emits a
// human table plus the machine-readable BENCH_whatif.json records, and
// optionally enforces whatif_thresholds.json (the `whatif_accuracy_gate`
// ctest).
//
// Usage:
//   extradeep-advisor                        # full suite (3 cases)
//   extradeep-advisor --quick                # gate subset (1 case)
//   extradeep-advisor --seed 7 --threads 0 --reps 5
//   extradeep-advisor --out BENCH_whatif.json
//   extradeep-advisor --thresholds whatif_thresholds.json  # exit 1 on violation

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "advisor/verify.hpp"
#include "common/error.hpp"

using namespace extradeep;

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--quick] [--seed N] [--threads N] [--reps N]\n"
                 "          [--out FILE] [--thresholds FILE]\n",
                 argv0);
}

/// Best-effort git revision for the BENCH_whatif.json trajectory.
std::string git_revision() {
    std::string rev = "unknown";
    if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        if (std::fgets(buf, sizeof(buf), p) != nullptr) {
            std::string s(buf);
            while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
                s.pop_back();
            }
            if (!s.empty()) {
                rev = s;
            }
        }
        pclose(p);
    }
    return rev;
}

}  // namespace

int main(int argc, char** argv) {
    advisor::VerifyOptions options;
    std::string out_path;
    std::string thresholds_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                throw InvalidArgumentError(std::string(flag) +
                                           " requires a value");
            }
            return argv[++i];
        };
        try {
            if (arg == "--quick") {
                options.quick = true;
            } else if (arg == "--seed") {
                options.seed = std::stoull(next_value("--seed"));
            } else if (arg == "--threads") {
                options.fit_threads = std::stoi(next_value("--threads"));
            } else if (arg == "--reps") {
                options.repetitions = std::stoi(next_value("--reps"));
            } else if (arg == "--out") {
                out_path = next_value("--out");
            } else if (arg == "--thresholds") {
                thresholds_path = next_value("--thresholds");
            } else if (arg == "-h" || arg == "--help") {
                usage(argv[0]);
                return 0;
            } else {
                std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
                usage(argv[0]);
                return 2;
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }

    try {
        const advisor::VerifyOutcome outcome = advisor::run_verify(options);
        std::printf("%s", outcome.table.c_str());

        if (!out_path.empty()) {
            std::ofstream out(out_path);
            if (!out) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             out_path.c_str());
                return 2;
            }
            out << advisor::whatif_bench_json(outcome.records,
                                              git_revision());
            std::printf("wrote %zu records to %s\n", outcome.records.size(),
                        out_path.c_str());
        }

        if (!thresholds_path.empty()) {
            const auto thresholds =
                eval::load_thresholds_file(thresholds_path);
            const eval::GateResult gate =
                eval::check_gate(outcome.records, thresholds);
            std::printf("gate: %zu rules, %zu records matched\n",
                        gate.rules_checked, gate.records_matched);
            if (!gate.pass) {
                for (const auto& v : gate.violations) {
                    std::fprintf(stderr, "GATE VIOLATION: %s\n", v.c_str());
                }
                std::fprintf(stderr,
                             "what-if accuracy gate FAILED (%zu violations)\n",
                             gate.violations.size());
                return 1;
            }
            std::printf("what-if accuracy gate passed\n");
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
