#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/report.hpp"

namespace extradeep::advisor {

/// Options of the what-if verification harness (the `extradeep-advisor`
/// binary and the whatif_accuracy_gate ctest).
struct VerifyOptions {
    /// Quick suite: the default DEEP data-parallel/weak case only. The full
    /// suite adds strong scaling and a JURECA (NCCL) case.
    bool quick = false;
    std::uint64_t seed = 1;
    /// Threads for the model-fitting stage (0 = hardware concurrency).
    int fit_threads = 1;
    /// Paired ground-truth re-simulations per scenario; 0 = suite default.
    int repetitions = 0;
};

/// Harness output: gateable metric records (reusing the eval gate schema)
/// plus a human-readable results table.
struct VerifyOutcome {
    std::vector<eval::MetricRecord> records;
    std::string table;
};

/// Runs the ground-truth verification loop: fit models per case, evaluate
/// the default scenario portfolio at an interpolation point (x=8) and an
/// extrapolation point (x=16), re-simulate every scenario against the
/// mutated simulator, and emit per-scenario `saving_err_pct`, per-point
/// `ranking_agreement` (concordance over scenario pairs whose predicted
/// intervals do not overlap) and `interval_coverage` records.
VerifyOutcome run_verify(const VerifyOptions& options);

/// Serialises records as the BENCH_whatif.json document:
///   {"schema": "extradeep-whatif/1", "git_rev": "...", "records": [...]}
std::string whatif_bench_json(const std::vector<eval::MetricRecord>& records,
                              const std::string& git_rev);

}  // namespace extradeep::advisor
