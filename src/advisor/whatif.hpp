#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "advisor/scenario.hpp"
#include "extradeep/models.hpp"
#include "extradeep/runner.hpp"
#include "hw/system.hpp"
#include "sim/workload.hpp"

namespace extradeep::advisor {

/// The fitted models and experiment parameters a what-if evaluation needs —
/// the model-side mirror of an .edpm file. Built either from an experiment
/// result (model_set_from) or field-by-field from a serve::ServableModel
/// (done in the serve layer, which owns that type).
struct ModelSet {
    std::string dataset;
    std::string system_name;
    parallel::StrategyKind strategy = parallel::StrategyKind::Data;
    parallel::ScalingMode scaling = parallel::ScalingMode::Weak;
    std::int64_t batch_per_worker = 0;
    int model_parallel_degree = 1;
    EpochModel epoch_time;
    std::array<EpochModel, trace::kPhaseCount> phase_time;
    StepMathFn step_math;
};

/// Packages a finished experiment for what-if evaluation (models and step
/// math are shared with the result).
ModelSet model_set_from(const ExperimentSpec& spec,
                        const ExperimentResult& result);

/// Resolves a system preset by .edpm SPEC name ("DEEP"/"JURECA"). Throws
/// InvalidArgumentError for unknown names — scenarios that need the system
/// (repricing, fusion) are unavailable for models fitted on systems this
/// build does not know.
hw::SystemSpec system_preset(const std::string& name);

/// Rebuilds the workload of one configuration from the model set's
/// experiment parameters (the SPEC-reconstruction path the .edpm loader also
/// uses for the step math). Throws if `ranks` is invalid for the strategy.
sim::Workload reconstruct_workload(const ModelSet& ms, int ranks);

/// Applies a scenario's hardware-side transforms to a system: link latency
/// divided / bandwidth multiplied by the combined factors, and the
/// collective override pinned. Overlap and fusion have no hardware knob and
/// leave the system untouched.
hw::SystemSpec mutate_system(const hw::SystemSpec& sys, const Scenario& sc);

/// One evaluated scenario: predicted epoch time with and without the
/// scenario, the predicted saving, and the saving's uncertainty band
/// propagated from the phase-model prediction intervals.
struct WhatIfResult {
    std::string spec;            ///< canonical scenario rendering
    double baseline = 0.0;       ///< predicted epoch time, unmutated
    double scenario_time = 0.0;  ///< predicted epoch time under the scenario
    double saving = 0.0;         ///< baseline - scenario_time
    double lower = 0.0;          ///< saving band (lower <= saving <= upper)
    double upper = 0.0;
};

/// Predicts the epoch-time effect of `sc` at `x` ranks. Identity scenarios
/// return the baseline bit-exactly (saving == 0.0). Throws
/// InvalidArgumentError when x is not a representable configuration or the
/// scenario needs a system/schedule reconstruction that is unavailable.
WhatIfResult evaluate_whatif(const ModelSet& ms, double x, const Scenario& sc);

/// The advisor's candidate portfolio (parseable scenario specs).
std::vector<std::string> default_portfolio();

/// Ranked what-if portfolio: options sorted by predicted saving (descending,
/// canonical spec as tie-break). Options whose evaluation throws (e.g.
/// fusion on an unknown system) are skipped and counted.
struct Advice {
    std::vector<WhatIfResult> ranked;
    int skipped = 0;
};

/// Evaluates the default portfolio at `x` and returns the top `top` options
/// (0 = all).
Advice advise(const ModelSet& ms, double x, std::size_t top = 0);

}  // namespace extradeep::advisor
