#pragma once

#include <cstdint>

#include "advisor/scenario.hpp"
#include "sim/kernel_schedule.hpp"
#include "sim/workload.hpp"

namespace extradeep::advisor {

/// The simulator-side mirror of a scenario: rebuilds `base`'s step schedule
/// under the mutated system (same kernel population and order — only
/// communication costs change), then applies kernel fusion in place (the
/// top-k compute kernels merge into the largest constituent's slot, launch
/// and dispatch overheads shrink by the saved launches) and finally hides
/// the overlap fraction of communication under the remaining computation.
/// Keeping the kernel list's length and order identical to the baseline
/// keeps the simulator's per-kernel noise draws aligned between baseline
/// and scenario runs, so paired differences isolate the scenario's effect.
sim::StepSchedule mutated_schedule(const sim::Workload& base,
                                   const Scenario& sc);

/// Ground-truth effect of a scenario, from paired re-simulation.
struct GroundTruth {
    double base_time = 0.0;      ///< median baseline epoch wall time
    double scenario_time = 0.0;  ///< median mutated epoch wall time
    double saving = 0.0;         ///< median of per-repetition paired savings
};

/// Simulates `repetitions` paired (baseline, scenario) epochs with shared
/// per-repetition seeds and returns the medians. This is the oracle the
/// advisor's predictions are verified against.
GroundTruth simulate_saving(const sim::Workload& base, const Scenario& sc,
                            int repetitions, std::uint64_t seed);

}  // namespace extradeep::advisor
