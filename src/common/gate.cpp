#include "common/gate.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/json.hpp"

namespace extradeep::gate {

namespace {

bool rule_matches(const Rule& rule, const Sample& sample) {
    if (sample.metric != rule.metric) {
        return false;
    }
    if (rule.scope != "*" && rule.scope != sample.scope) {
        return false;
    }
    if (rule.noise >= 0.0 && std::abs(rule.noise - sample.noise) > 1e-12) {
        return false;
    }
    return true;
}

}  // namespace

Outcome check_rules(const std::vector<Sample>& samples,
                    const std::vector<Rule>& rules) {
    Outcome out;
    out.rules_checked = rules.size();
    for (std::size_t ri = 0; ri < rules.size(); ++ri) {
        const Rule& rule = rules[ri];
        std::size_t matched = 0;
        for (std::size_t si = 0; si < samples.size(); ++si) {
            const Sample& sample = samples[si];
            if (!rule_matches(rule, sample)) {
                continue;
            }
            ++matched;
            if (rule.min && sample.value < *rule.min) {
                out.violations.push_back(
                    {Violation::Kind::BelowMin, ri, si, *rule.min});
            }
            if (rule.max && sample.value > *rule.max) {
                out.violations.push_back(
                    {Violation::Kind::AboveMax, ri, si, *rule.max});
            }
        }
        if (matched == 0) {
            out.violations.push_back({Violation::Kind::Unmatched, ri, 0, 0.0});
        }
        out.samples_matched += matched;
    }
    out.pass = out.violations.empty();
    return out;
}

std::vector<Rule> parse_rules(const std::string& json_text,
                              const RuleDocSpec& spec) {
    const json::Value doc = json::parse(json_text, spec.what);
    if (doc.kind != json::Value::Kind::Object) {
        throw ParseError(spec.what + ": top level must be an object");
    }
    const json::Value* list = doc.find(spec.array_key);
    if (list == nullptr || list->kind != json::Value::Kind::Array) {
        throw ParseError(spec.what + ": missing \"" + spec.array_key +
                         "\" array");
    }
    std::vector<Rule> out;
    out.reserve(list->array.size());
    for (const json::Value& entry : list->array) {
        if (entry.kind != json::Value::Kind::Object) {
            throw ParseError(spec.what + ": rule must be an object");
        }
        Rule rule;
        if (const json::Value* v = entry.find(spec.scope_key)) {
            if (v->kind != json::Value::Kind::String) {
                throw ParseError(spec.what + ": \"" + spec.scope_key +
                                 "\" must be a string");
            }
            rule.scope = v->string;
        }
        if (spec.parse_noise) {
            if (const json::Value* v = entry.find("noise")) {
                if (v->kind != json::Value::Kind::Number) {
                    throw ParseError(spec.what +
                                     ": \"noise\" must be a number");
                }
                rule.noise = v->number;
            }
        }
        const json::Value* metric = entry.find("metric");
        if (metric == nullptr || metric->kind != json::Value::Kind::String ||
            metric->string.empty()) {
            throw ParseError(spec.what + ": rule lacks a \"metric\" string");
        }
        rule.metric = metric->string;
        if (const json::Value* v = entry.find("min")) {
            if (v->kind != json::Value::Kind::Number) {
                throw ParseError(spec.what + ": \"min\" must be a number");
            }
            rule.min = v->number;
        }
        if (const json::Value* v = entry.find("max")) {
            if (v->kind != json::Value::Kind::Number) {
                throw ParseError(spec.what + ": \"max\" must be a number");
            }
            rule.max = v->number;
        }
        if (spec.require_bound && !rule.min && !rule.max) {
            throw ParseError(spec.what + ": rule for metric '" + rule.metric +
                             "' has neither \"min\" nor \"max\"");
        }
        out.push_back(std::move(rule));
    }
    if (out.empty() && !spec.allow_empty) {
        throw ParseError(spec.what + ": empty " + spec.array_key + " array");
    }
    return out;
}

}  // namespace extradeep::gate
