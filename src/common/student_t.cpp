#include "common/student_t.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace extradeep::stats {

double log_gamma(double x) {
    // Lanczos approximation with g = 7, n = 9 coefficients.
    static const double coeffs[] = {
        0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
        771.32342877765313,   -176.61502916214059, 12.507343278686905,
        -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
    if (x < 0.5) {
        // Reflection formula keeps the approximation in its accurate range.
        return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
    }
    x -= 1.0;
    double a = coeffs[0];
    const double t = x + 7.5;
    for (int i = 1; i < 9; ++i) {
        a += coeffs[i] / (x + static_cast<double>(i));
    }
    return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

namespace {

// Continued fraction for the incomplete beta function (Numerical Recipes
// style modified Lentz algorithm).
double beta_cf(double a, double b, double x) {
    constexpr int kMaxIter = 300;
    constexpr double kEps = 3.0e-14;
    constexpr double kFpMin = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < kFpMin) d = kFpMin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIter; ++m) {
        const double m2 = 2.0 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < kFpMin) d = kFpMin;
        c = 1.0 + aa / c;
        if (std::abs(c) < kFpMin) c = kFpMin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < kFpMin) d = kFpMin;
        c = 1.0 + aa / c;
        if (std::abs(c) < kFpMin) c = kFpMin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < kEps) {
            return h;
        }
    }
    throw NumericalError("incomplete_beta: continued fraction did not converge");
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
    if (a <= 0.0 || b <= 0.0) {
        throw InvalidArgumentError("incomplete_beta: a, b must be positive");
    }
    if (x < 0.0 || x > 1.0) {
        throw InvalidArgumentError("incomplete_beta: x outside [0, 1]");
    }
    if (x == 0.0) return 0.0;
    if (x == 1.0) return 1.0;
    const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                            a * std::log(x) + b * std::log(1.0 - x);
    const double front = std::exp(ln_front);
    // Use the symmetry relation to stay in the fast-converging region.
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return front * beta_cf(a, b, x) / a;
    }
    return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
    if (dof <= 0.0) {
        throw InvalidArgumentError("student_t_cdf: dof must be positive");
    }
    const double x = dof / (dof + t * t);
    const double p = 0.5 * incomplete_beta(dof / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - p : p;
}

double student_t_quantile(double p, double dof) {
    if (p <= 0.0 || p >= 1.0) {
        throw InvalidArgumentError("student_t_quantile: p outside (0, 1)");
    }
    if (dof <= 0.0) {
        throw InvalidArgumentError("student_t_quantile: dof must be positive");
    }
    if (p == 0.5) return 0.0;
    // Bisection on the CDF: monotone, so this is robust for all dof.
    double lo = -1.0;
    double hi = 1.0;
    while (student_t_cdf(lo, dof) > p) lo *= 2.0;
    while (student_t_cdf(hi, dof) < p) hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (student_t_cdf(mid, dof) < p) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-12 * (1.0 + std::abs(hi))) {
            break;
        }
    }
    return 0.5 * (lo + hi);
}

double student_t_critical(double confidence, double dof) {
    if (confidence <= 0.0 || confidence >= 1.0) {
        throw InvalidArgumentError("student_t_critical: confidence outside (0, 1)");
    }
    return student_t_quantile(0.5 + confidence / 2.0, dof);
}

}  // namespace extradeep::stats
