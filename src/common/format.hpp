#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace extradeep::fmt {

/// Fixed-precision decimal rendering, e.g. fixed(3.14159, 2) == "3.14".
std::string fixed(double value, int decimals);

/// Percent rendering with one decimal, e.g. percent(12.34) == "12.3%".
std::string percent(double value, int decimals = 1);

/// Seconds with adaptive unit (us / ms / s / min / h), three significant
/// digits, e.g. seconds(0.00123) == "1.23 ms".
std::string seconds(double secs);

/// Byte count with adaptive binary unit (B / KiB / MiB / GiB).
std::string bytes(double n);

/// Large counts with thousands separators, e.g. count(1234567) == "1,234,567".
std::string count(std::int64_t n);

/// Scientific-ish compact rendering used for model coefficients: fixed for
/// magnitudes in [1e-3, 1e5), scientific otherwise.
std::string coeff(double value);

/// Shortest decimal rendering that parses back to the *bit-identical*
/// double (the "shortest round-trip" encoding). Use this everywhere a
/// serialised value is re-read by the pipeline: any fixed precision below
/// max_digits10 (17) silently loses bits, and a fixed 17 digits bloats the
/// common case ("0.1" instead of "0.100000000000000006"). Non-finite values
/// render as "nan" / "inf" / "-inf".
std::string shortest(double value);

/// C99 hexadecimal floating-point rendering ("%a", e.g. "0x1.91eb8p+1").
/// Exact by construction and locale-independent; this is the encoding of
/// the .edpm model format where bit-exactness is a schema guarantee.
/// Non-finite values render as "nan" / "inf" / "-inf".
std::string hexfloat(double value);

/// Parses the output of shortest()/hexfloat() (strtod grammar, full
/// precision). Returns false on trailing garbage, empty input, or range
/// errors; accepts "nan"/"inf"/"-inf".
bool parse_double(std::string_view text, double& out);

}  // namespace extradeep::fmt
