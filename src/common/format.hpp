#pragma once

#include <cstdint>
#include <string>

namespace extradeep::fmt {

/// Fixed-precision decimal rendering, e.g. fixed(3.14159, 2) == "3.14".
std::string fixed(double value, int decimals);

/// Percent rendering with one decimal, e.g. percent(12.34) == "12.3%".
std::string percent(double value, int decimals = 1);

/// Seconds with adaptive unit (us / ms / s / min / h), three significant
/// digits, e.g. seconds(0.00123) == "1.23 ms".
std::string seconds(double secs);

/// Byte count with adaptive binary unit (B / KiB / MiB / GiB).
std::string bytes(double n);

/// Large counts with thousands separators, e.g. count(1234567) == "1,234,567".
std::string count(std::int64_t n);

/// Scientific-ish compact rendering used for model coefficients: fixed for
/// magnitudes in [1e-3, 1e5), scientific otherwise.
std::string coeff(double value);

}  // namespace extradeep::fmt
