#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace extradeep::gate {

/// Shared threshold-gate core. The regression gates (eval accuracy, perf
/// throughput, what-if advisor, fleet drift, serve load, plan budget) all
/// enforce the same "rules match samples" semantics: wildcard scope "*",
/// wildcard noise (negative), optional min/max bounds, and the
/// unmatched-rule-is-a-violation guard - a renamed metric or removed case
/// must not silently disable its threshold. This is the single
/// implementation; the per-gate front-ends map their record types onto
/// Sample and render Violation into their established message strings.

/// One measured data point a gate rule can match.
struct Sample {
    std::string scope;      ///< case name / loadgen mode / plan case
    double noise = -1.0;    ///< noise level; negative = not applicable
    std::string metric;
    double value = 0.0;
};

/// One gate rule. `scope` may be "*" (match any sample scope); `noise` may
/// be negative (match any noise level). At least one of min/max is set by
/// every parsed rule unless the front-end's RuleDocSpec says otherwise.
struct Rule {
    std::string scope = "*";
    double noise = -1.0;
    std::string metric;
    std::optional<double> min;
    std::optional<double> max;
};

/// A structured gate violation. The indices point back into the rule and
/// sample vectors handed to check_rules so front-ends can format messages
/// in their own established style.
struct Violation {
    enum class Kind { BelowMin, AboveMax, Unmatched };
    Kind kind = Kind::Unmatched;
    std::size_t rule = 0;    ///< index into the rules vector
    std::size_t sample = 0;  ///< index into samples (meaningless for Unmatched)
    double bound = 0.0;      ///< the breached min/max (0 for Unmatched)
};

struct Outcome {
    bool pass = true;
    std::size_t rules_checked = 0;
    /// Sum over rules of the number of samples each rule matched.
    std::size_t samples_matched = 0;
    std::vector<Violation> violations;
};

/// Checks every rule against every sample. Iteration is rule-major and
/// sample-minor, and a sample breaching both bounds emits BelowMin before
/// AboveMax, so violation order is stable and matches the historical gate
/// output of every front-end. A rule that matched no sample at all yields
/// one Unmatched violation.
Outcome check_rules(const std::vector<Sample>& samples,
                    const std::vector<Rule>& rules);

/// Schema knobs for parse_rules, covering the dialect differences between
/// the gate front-ends (eval-style thresholds vs serve-style load rules).
struct RuleDocSpec {
    std::string what = "thresholds JSON";  ///< error-message prefix
    std::string array_key = "thresholds";  ///< top-level rule-array member
    std::string scope_key = "case";        ///< per-rule scope member
    bool parse_noise = true;               ///< accept a "noise" member
    bool require_bound = true;             ///< each rule needs min or max
    bool allow_empty = false;              ///< tolerate an empty rule array
};

/// Parses a rules document:
///   {"<array_key>": [{"<scope_key>": "*", "noise": 0.0,
///                     "metric": "exponent_recovery", "min": 1.0}, ...]}
/// Throws ParseError (prefixed with spec.what) on malformed JSON, a missing
/// rule array, non-string metric, non-number bounds, a rule without bounds
/// when spec.require_bound, or an empty array unless spec.allow_empty.
std::vector<Rule> parse_rules(const std::string& json_text,
                              const RuleDocSpec& spec);

}  // namespace extradeep::gate
