#include "common/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace extradeep {

namespace {

/// Release/acquire publication: the hook struct's fields must be visible to
/// worker threads that observe the pointer.
std::atomic<const TaskContextHook*> g_task_context_hook{nullptr};

}  // namespace

void set_task_context_hook(const TaskContextHook* hook) {
    g_task_context_hook.store(hook, std::memory_order_release);
}

const TaskContextHook* task_context_hook() {
    return g_task_context_hook.load(std::memory_order_acquire);
}

int resolve_num_threads(int requested) {
    if (requested >= 1) {
        return requested;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
    const int threads = resolve_num_threads(num_threads);
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int i = 1; i < threads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

void ThreadPool::record_error(int chunk_index, std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_chunk_ < 0 || chunk_index < error_chunk_) {
        error_chunk_ = chunk_index;
        error_ = std::move(error);
    }
}

void ThreadPool::run_chunk(int chunk_index) {
    const std::size_t threads = static_cast<std::size_t>(thread_count());
    const std::size_t begin =
        job_count_ * static_cast<std::size_t>(chunk_index) / threads;
    const std::size_t end =
        job_count_ * (static_cast<std::size_t>(chunk_index) + 1) / threads;
    if (begin >= end) {
        return;
    }
    const TaskContextHook* hook = task_context_hook();
    std::uint64_t previous = 0;
    if (hook != nullptr) {
        previous = hook->install(job_context_);
    }
    try {
        (*job_body_)(chunk_index, begin, end);
    } catch (...) {
        record_error(chunk_index, std::current_exception());
    }
    if (hook != nullptr) {
        hook->restore(previous);
    }
}

void ThreadPool::run_task(Task task) {
    const TaskContextHook* hook = task_context_hook();
    std::uint64_t previous = 0;
    if (hook != nullptr) {
        previous = hook->install(task.context);
    }
    // Deliberately no try/catch: detached tasks have no join point to
    // rethrow at, so an escaping exception terminates (documented contract).
    task.body();
    if (hook != nullptr) {
        hook->restore(previous);
    }
}

void ThreadPool::worker_loop(int chunk_index) {
    std::uint64_t seen_generation = 0;
    while (true) {
        Task task;
        bool have_task = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return stop_ || generation_ != seen_generation ||
                       !tasks_.empty();
            });
            if (stop_) {
                return;
            }
            if (generation_ != seen_generation) {
                // A fork-join job takes priority: the caller is blocked on
                // its barrier, queued tasks are not blocked on anything.
                seen_generation = generation_;
            } else {
                task = std::move(tasks_.front());
                tasks_.pop_front();
                have_task = true;
            }
        }
        if (have_task) {
            run_task(std::move(task));
            continue;
        }
        run_chunk(chunk_index);
        bool last = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            last = --pending_ == 0;
        }
        if (last) {
            done_cv_.notify_all();
        }
    }
}

void ThreadPool::submit(std::function<void()> task) {
    if (workers_.empty()) {
        throw std::logic_error(
            "ThreadPool::submit: pool has no background workers "
            "(thread_count() must be >= 2)");
    }
    const TaskContextHook* hook = task_context_hook();
    Task t;
    t.body = std::move(task);
    t.context = hook != nullptr ? hook->capture() : 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(t));
    }
    start_cv_.notify_one();
}

std::size_t ThreadPool::queued_tasks() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.size();
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(int, std::size_t, std::size_t)>& body) {
    if (count == 0) {
        return;
    }
    if (workers_.empty()) {
        // Single-threaded pool: run inline, preserving the chunk interface.
        body(0, 0, count);
        return;
    }
    const TaskContextHook* hook = task_context_hook();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_count_ = count;
        job_context_ = hook != nullptr ? hook->capture() : 0;
        job_body_ = &body;
        error_chunk_ = -1;
        error_ = nullptr;
        pending_ = static_cast<int>(workers_.size());
        ++generation_;
    }
    start_cv_.notify_all();
    run_chunk(0);  // the caller is chunk 0
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return pending_ == 0; });
        job_body_ = nullptr;
        if (error_) {
            std::exception_ptr err = std::move(error_);
            error_ = nullptr;
            lock.unlock();
            std::rethrow_exception(err);
        }
    }
}

void parallel_for(std::size_t count, int num_threads,
                  const std::function<void(int, std::size_t, std::size_t)>& body) {
    const int threads =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(resolve_num_threads(num_threads)),
            std::max<std::size_t>(count, 1)));
    ThreadPool pool(threads);
    pool.parallel_for(count, body);
}

}  // namespace extradeep
