#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace extradeep {

/// Resolves a thread-count request: values >= 1 are taken as-is, anything
/// else (0 or negative) means "use the hardware concurrency" (at least 1).
int resolve_num_threads(int requested);

/// Caller-context propagation for parallel_for, so higher layers can carry
/// thread-local ambient state (e.g. the observability tracer's current-span
/// id, src/obs) from the dispatching thread onto the worker threads without
/// this low-level library depending on them.
///
/// `capture` runs on the calling thread at parallel_for dispatch and
/// returns an opaque token; around every chunk, `install(token)` runs on
/// the executing thread (returning that thread's previous token) and
/// `restore(previous)` afterwards, exception paths included. All three are
/// plain function pointers: when no hook is registered the cost is one
/// relaxed atomic load per parallel_for, and hook implementations are
/// expected to be a thread-local read/write each.
struct TaskContextHook {
    std::uint64_t (*capture)();
    std::uint64_t (*install)(std::uint64_t token);
    void (*restore)(std::uint64_t previous);
};

/// Registers the process-wide hook (static storage required; pass nullptr
/// to deregister). Registering the same hook again is a no-op, so multiple
/// initialisation paths may race benignly; registering a *different* hook
/// while parallel loops are in flight is not supported.
void set_task_context_hook(const TaskContextHook* hook);
const TaskContextHook* task_context_hook();

/// A small reusable fork-join thread pool for data-parallel loops. Workers
/// are spawned once and reused across parallel_for calls, so the pool can be
/// hoisted out of hot loops (e.g. one pool per model-generation pass).
///
/// The pool always counts the calling thread as worker 0: a pool of size T
/// spawns T - 1 background threads and runs one chunk on the caller, so
/// ThreadPool(1) degenerates to an inline loop with zero threading overhead.
class ThreadPool {
public:
    /// `num_threads` is resolved via resolve_num_threads.
    explicit ThreadPool(int num_threads = 1);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total number of threads participating in parallel_for (including the
    /// calling thread).
    int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

    /// Splits [0, count) into one contiguous chunk per thread (chunk c covers
    /// [count*c/T, count*(c+1)/T)) and runs `body(chunk_index, begin, end)`
    /// on every non-empty chunk concurrently. Blocks until all chunks have
    /// finished. If any chunk throws, the exception from the lowest chunk
    /// index is rethrown on the caller after all chunks complete, which keeps
    /// error reporting deterministic across thread counts.
    void parallel_for(std::size_t count,
                      const std::function<void(int chunk, std::size_t begin,
                                               std::size_t end)>& body);

    /// Request-level dispatch: enqueues one independent task that an idle
    /// background worker picks up FIFO and runs to completion, without any
    /// barrier — tasks never wait on each other, which is what the serve
    /// plane needs so one slow request cannot stall another (no fork-join
    /// head-of-line blocking). The TaskContextHook token is captured at
    /// submit time and installed around the task, exactly as parallel_for
    /// does for chunks. Tasks must not throw (an escaped exception
    /// terminates the process — there is no join point to rethrow at).
    ///
    /// Only background workers run tasks (the calling thread never does), so
    /// the pool must have thread_count() >= 2; submit on a degenerate
    /// single-thread pool throws. Tasks still queued when the pool is
    /// destroyed are dropped; tasks already running always complete before
    /// the destructor returns. Mixing submit() and parallel_for() on one
    /// pool is allowed; a dispatched fork-join job takes priority over
    /// queued tasks on each worker.
    void submit(std::function<void()> task);

    /// Tasks enqueued via submit() and not yet picked up by a worker.
    std::size_t queued_tasks() const;

private:
    struct Task {
        std::function<void()> body;
        std::uint64_t context = 0;  ///< TaskContextHook token of the submitter
    };

    void worker_loop(int chunk_index);
    void run_chunk(int chunk_index);
    void run_task(Task task);
    void record_error(int chunk_index, std::exception_ptr error);

    std::vector<std::thread> workers_;

    mutable std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;
    int pending_ = 0;
    bool stop_ = false;
    std::deque<Task> tasks_;

    // State of the in-flight parallel_for.
    std::size_t job_count_ = 0;
    std::uint64_t job_context_ = 0;  ///< TaskContextHook token of the caller
    const std::function<void(int, std::size_t, std::size_t)>* job_body_ = nullptr;
    int error_chunk_ = -1;
    std::exception_ptr error_;
};

/// One-shot convenience: runs `body` over [0, count) with a transient pool of
/// `num_threads` threads (resolved via resolve_num_threads). Prefer a named
/// ThreadPool when calling repeatedly.
void parallel_for(std::size_t count, int num_threads,
                  const std::function<void(int chunk, std::size_t begin,
                                           std::size_t end)>& body);

}  // namespace extradeep
