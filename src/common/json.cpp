#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace extradeep::json {

const Value* Value::find(const std::string& key) const {
    for (const auto& [k, v] : object) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

namespace {

class Parser {
public:
    Parser(const std::string& text, const std::string& context)
        : text_(text), context_(context) {}

    Value parse() {
        Value v = value();
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing data after JSON document");
        }
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw ParseError(context_ + ": " + what + " at offset " +
                         std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        skip_ws();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Value value() {
        const char c = peek();
        Value v;
        if (c == '{') {
            ++pos_;
            v.kind = Value::Kind::Object;
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                if (peek() != '"') {
                    fail("object key must be a string");
                }
                std::string key = parse_string();
                expect(':');
                v.object.emplace_back(std::move(key), value());
                const char next = peek();
                if (next == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            ++pos_;
            v.kind = Value::Kind::Array;
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.array.push_back(value());
                const char next = peek();
                if (next == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.kind = Value::Kind::String;
            v.string = parse_string();
            return v;
        }
        if (consume_literal("true")) {
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consume_literal("false")) {
            v.kind = Value::Kind::Bool;
            return v;
        }
        if (consume_literal("null")) {
            return v;
        }
        // Number: parse with from_chars (locale independent).
        v.kind = Value::Kind::Number;
        const char* begin = text_.data() + pos_;
        const char* end = text_.data() + text_.size();
        const auto [ptr, ec] = std::from_chars(begin, end, v.number);
        if (ec != std::errc{} || ptr == begin) {
            fail("invalid number");
        }
        pos_ += static_cast<std::size_t>(ptr - begin);
        return v;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    break;
                }
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    default: fail("unsupported string escape");
                }
                continue;
            }
            out += c;
        }
        fail("unterminated string");
    }

    const std::string& text_;
    const std::string& context_;
    std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text, const std::string& context) {
    return Parser(text, context).parse();
}

std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default: out += c;
        }
    }
    out += '"';
    return out;
}

std::string number(double v) {
    if (!std::isfinite(v)) {
        throw InvalidArgumentError("json::number: non-finite value");
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

}  // namespace extradeep::json
