#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace extradeep {

/// Simple aligned ASCII table used by the benchmark harnesses to print the
/// paper's tables/figure series. Cells are strings; use the helpers in
/// common/format.hpp to render numbers consistently.
class Table {
public:
    /// Creates a table with the given column headers.
    explicit Table(std::vector<std::string> headers);

    /// Appends one row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    /// Number of data rows.
    std::size_t row_count() const { return rows_.size(); }

    /// Renders the table with a header rule and per-column alignment
    /// (numbers are right-aligned automatically).
    std::string to_string() const;

    /// Renders the table as comma-separated values (header + rows) for
    /// machine-readable bench output.
    std::string to_csv() const;

    friend std::ostream& operator<<(std::ostream& os, const Table& t);

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace extradeep
