#pragma once

#include <cstddef>
#include <vector>

namespace extradeep::linalg {

/// Minimal dense row-major matrix used by the PMNF fitting code. Sizes are
/// tiny (design matrices of ~5-30 rows, 2-5 columns), so the implementation
/// favours clarity over blocking/vectorisation.
class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    double& operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /// Raw row-major storage / row pointers, for the simd kernels.
    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }
    double* row(std::size_t r) { return data_.data() + r * cols_; }
    const double* row(std::size_t r) const { return data_.data() + r * cols_; }

    Matrix transposed() const;
    Matrix operator*(const Matrix& rhs) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Result of an ordinary-least-squares solve.
struct LeastSquaresResult {
    std::vector<double> coefficients;  ///< beta minimising ||A beta - b||_2
    double residual_norm = 0.0;        ///< ||A beta - b||_2 at the solution
    /// Unscaled parameter covariance (A^T A)^{-1}; multiply by the residual
    /// variance s^2 to obtain Var(beta). Row-major, cols x cols.
    Matrix covariance_unscaled;
    bool rank_deficient = false;  ///< true if A was (numerically) rank deficient
};

/// Solves the overdetermined system A x ~= b in the least-squares sense via
/// Householder QR with column norm checks. A must have rows >= cols. If A is
/// numerically rank deficient the affected coefficients are set to zero and
/// `rank_deficient` is flagged rather than throwing, because the PMNF search
/// legitimately generates collinear hypotheses that should simply score badly.
LeastSquaresResult least_squares(const Matrix& a, const std::vector<double>& b);

/// Solves the square symmetric positive definite system S x = b via Cholesky.
/// Throws NumericalError if S is not SPD.
std::vector<double> solve_spd(const Matrix& s, const std::vector<double>& b);

/// Inverse of a small SPD matrix via Cholesky. Throws NumericalError if the
/// matrix is not SPD.
Matrix invert_spd(const Matrix& s);

}  // namespace extradeep::linalg
