#pragma once

namespace extradeep::stats {

/// Natural log of the gamma function (Lanczos approximation, |err| < 1e-13
/// for x > 0).
double log_gamma(double x);

/// Regularized incomplete beta function I_x(a, b) for x in [0, 1], a, b > 0.
/// Evaluated with the Lentz continued-fraction method.
double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `dof` degrees of freedom.
double student_t_cdf(double t, double dof);

/// Quantile (inverse CDF) of Student's t distribution. `p` must lie in
/// (0, 1). Used for the 95 % confidence intervals around PMNF model
/// predictions (paper Fig. 3). Throws InvalidArgumentError on bad input.
double student_t_quantile(double p, double dof);

/// Two-sided critical value t* such that P(|T| <= t*) == `confidence`
/// (e.g. confidence = 0.95).
double student_t_critical(double confidence, double dof);

}  // namespace extradeep::stats
