#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace extradeep {

/// Severity of one ingestion/validation diagnostic.
///
/// - Info: observation with no effect on the data (e.g. "quarantined block
///   re-synchronised").
/// - Warning: data was skipped/repaired but the surrounding run remains
///   usable (e.g. one corrupt event line dropped).
/// - Error: the affected run or file cannot be trusted and must be dropped
///   (e.g. missing header, truncated file, unmatched step marks).
enum class Severity {
    Info,
    Warning,
    Error,
};

std::string_view severity_name(Severity severity);

/// How a reader of a versioned on-disk format (EDP profiles, .edpm models)
/// reacts to malformed input. Shared by every strict/tolerant load path so
/// the error-handling contract is uniform across formats (DESIGN.md §8).
enum class ParseMode {
    /// Throw ParseError on the first problem (the historical behaviour).
    Strict,
    /// Never throw on malformed *content*: skip or quarantine what cannot be
    /// decoded and report everything as Diagnostics. On clean input the
    /// result is identical to Strict mode.
    Tolerant,
};

/// One structured problem report from the tolerant EDP parser or the
/// run/experiment validation pass. Collecting these instead of throwing is
/// what lets the pipeline degrade gracefully on partially corrupt profiles.
struct Diagnostic {
    Severity severity = Severity::Warning;
    long long line = -1;  ///< 1-based input line number, -1 if not line-scoped
    int rank = -1;        ///< MPI rank the problem belongs to, -1 if none
    std::string reason;   ///< human-readable description

    /// "error [line 12, rank 3]: EDP: bad number for event start"
    std::string format() const;
};

/// Append-only diagnostic collector. Storage is capped (default 1000
/// entries) so pathological inputs cannot blow up memory; counts keep
/// accumulating past the cap.
class DiagnosticLog {
public:
    static constexpr std::size_t kDefaultCapacity = 1000;

    explicit DiagnosticLog(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity) {}

    void add(Severity severity, std::string reason, long long line = -1,
             int rank = -1);
    void add(Diagnostic d);

    /// Appends every entry of `other` (subject to this log's cap) and adds
    /// its overflow counts.
    void merge(const DiagnosticLog& other);

    const std::vector<Diagnostic>& entries() const { return entries_; }
    bool empty() const { return total_ == 0; }

    /// Total number of diagnostics recorded, including those dropped once
    /// the storage cap was reached.
    std::size_t total() const { return total_; }
    std::size_t count(Severity severity) const;
    bool has_errors() const { return count(Severity::Error) > 0; }

    /// "3 errors, 5 warnings, 1 info" (omitting zero counts); "clean" if
    /// nothing was recorded.
    std::string summary() const;

private:
    std::vector<Diagnostic> entries_;
    std::size_t capacity_ = kDefaultCapacity;
    std::size_t total_ = 0;
    std::size_t counts_[3] = {0, 0, 0};
};

}  // namespace extradeep
