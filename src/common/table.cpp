#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.hpp"

namespace extradeep {

namespace {

bool looks_numeric(const std::string& s) {
    if (s.empty()) return false;
    std::size_t i = 0;
    if (s[i] == '-' || s[i] == '+') ++i;
    bool digit = false;
    for (; i < s.size(); ++i) {
        const char c = s[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit = true;
        } else if (c != '.' && c != '%' && c != 'e' && c != 'E' && c != '-' &&
                   c != '+' && c != 'x') {
            return false;
        }
    }
    return digit;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) {
        throw InvalidArgumentError("Table: no headers");
    }
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw InvalidArgumentError("Table::add_row: wrong cell count");
    }
    rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
    const std::size_t ncols = headers_.size();
    std::vector<std::size_t> width(ncols, 0);
    std::vector<bool> numeric(ncols, true);
    for (std::size_t c = 0; c < ncols; ++c) {
        width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < ncols; ++c) {
            width[c] = std::max(width[c], row[c].size());
            if (!row[c].empty() && !looks_numeric(row[c])) {
                numeric[c] = false;
            }
        }
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row, bool header) {
        os << "|";
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string& cell = row[c];
            const std::size_t pad = width[c] - cell.size();
            os << ' ';
            if (!header && numeric[c]) {
                os << std::string(pad, ' ') << cell;
            } else {
                os << cell << std::string(pad, ' ');
            }
            os << " |";
        }
        os << '\n';
    };
    emit_row(headers_, true);
    os << "|";
    for (std::size_t c = 0; c < ncols; ++c) {
        os << std::string(width[c] + 2, '-') << "|";
    }
    os << '\n';
    for (const auto& row : rows_) {
        emit_row(row, false);
    }
    return os.str();
}

std::string Table::to_csv() const {
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << ',';
            const bool quote = row[c].find(',') != std::string::npos;
            if (quote) os << '"';
            os << row[c];
            if (quote) os << '"';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) {
        emit(row);
    }
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
    return os << t.to_string();
}

}  // namespace extradeep
