#pragma once

#include <string>
#include <utility>
#include <vector>

namespace extradeep::json {

/// Minimal hand-rolled JSON support shared by the eval report layer (the
/// BENCH_eval.json schema and the thresholds gate) and the observability
/// subsystem (Chrome trace-event export and its validation in tests). It
/// supports objects, arrays, strings (with the common escapes), numbers,
/// booleans and null - enough for those schemas while rejecting malformed
/// documents loudly. No dependency is taken on a JSON library by design:
/// the container image is fixed and the formats involved are tiny.

struct Value {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    /// Object member lookup; nullptr if absent (or not an object).
    const Value* find(const std::string& key) const;
};

/// Parses one complete JSON document. `context` prefixes every ParseError
/// message (e.g. "thresholds JSON"), so callers keep their original error
/// wording. Throws ParseError on malformed input or trailing data.
Value parse(const std::string& text, const std::string& context = "JSON");

/// Serialises a string with JSON quoting/escaping (the inverse of the
/// escapes parse() accepts), including the surrounding quotes.
std::string quote(const std::string& s);

/// Locale-independent compact number rendering for JSON output. Throws
/// InvalidArgumentError on non-finite values (JSON has no encoding for
/// them).
std::string number(double v);

}  // namespace extradeep::json
