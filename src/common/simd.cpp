#include "common/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

namespace extradeep::simd {

namespace {

// GCC/Clang generic vector extension: two doubles per register (16 bytes,
// within the baseline ABI on every supported target, so no -Wpsabi ABI
// change); the kernels process two registers per iteration to realise the
// 4-lane layout. Other compilers fall through to the scalar loops (the
// Vector backend then degrades to the reference implementation, preserving
// results exactly).
#if defined(__GNUC__) || defined(__clang__)
#define EXTRADEEP_SIMD_VEXT 1
typedef double v2df __attribute__((vector_size(16)));

inline v2df load2(const double* p) {
    v2df v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline void store2(double* p, v2df v) { std::memcpy(p, &v, sizeof(v)); }
#endif

// -1 = unresolved (consult EXTRADEEP_SIMD on first use).
std::atomic<int> g_backend{-1};

Backend resolve_default() {
    const char* env = std::getenv("EXTRADEEP_SIMD");
    if (env != nullptr && std::string(env) == "scalar") {
        return Backend::Scalar;
    }
    return Backend::Vector;
}

void mul_inplace_scalar(double* dst, const double* src, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] *= src[i];
    }
}

void mul_inplace_vector(double* dst, const double* src, std::size_t n) {
#if EXTRADEEP_SIMD_VEXT
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        store2(dst + i, load2(dst + i) * load2(src + i));
        store2(dst + i + 2, load2(dst + i + 2) * load2(src + i + 2));
    }
    for (; i < n; ++i) {
        dst[i] *= src[i];
    }
#else
    mul_inplace_scalar(dst, src, n);
#endif
}

void axpy_scalar(double* y, double a, const double* x, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        y[i] += a * x[i];
    }
}

void axpy_vector(double* y, double a, const double* x, std::size_t n) {
#if EXTRADEEP_SIMD_VEXT
    const v2df va = {a, a};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        store2(y + i, load2(y + i) + va * load2(x + i));
        store2(y + i + 2, load2(y + i + 2) + va * load2(x + i + 2));
    }
    for (; i < n; ++i) {
        y[i] += a * x[i];
    }
#else
    axpy_scalar(y, a, x, n);
#endif
}

double dot_scalar(const double* a, const double* b, std::size_t n) {
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        lanes[0] += a[i] * b[i];
        lanes[1] += a[i + 1] * b[i + 1];
        lanes[2] += a[i + 2] * b[i + 2];
        lanes[3] += a[i + 3] * b[i + 3];
    }
    for (std::size_t l = 0; i < n; ++i, ++l) {
        lanes[l] += a[i] * b[i];
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double dot_vector(const double* a, const double* b, std::size_t n) {
#if EXTRADEEP_SIMD_VEXT
    v2df acc01 = {0.0, 0.0};
    v2df acc23 = {0.0, 0.0};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc01 += load2(a + i) * load2(b + i);
        acc23 += load2(a + i + 2) * load2(b + i + 2);
    }
    double lanes[4];
    std::memcpy(lanes, &acc01, sizeof(acc01));
    std::memcpy(lanes + 2, &acc23, sizeof(acc23));
    for (std::size_t l = 0; i < n; ++i, ++l) {
        lanes[l] += a[i] * b[i];
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
#else
    return dot_scalar(a, b, n);
#endif
}

}  // namespace

Backend active_backend() {
    int v = g_backend.load(std::memory_order_relaxed);
    if (v < 0) {
        v = static_cast<int>(resolve_default());
        g_backend.store(v, std::memory_order_relaxed);
    }
    return static_cast<Backend>(v);
}

void set_backend(Backend backend) {
    g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

const char* backend_name(Backend backend) {
    return backend == Backend::Scalar ? "scalar" : "vector";
}

void mul_inplace(double* dst, const double* src, std::size_t n) {
    if (active_backend() == Backend::Vector) {
        mul_inplace_vector(dst, src, n);
    } else {
        mul_inplace_scalar(dst, src, n);
    }
}

void axpy(double* y, double a, const double* x, std::size_t n) {
    if (active_backend() == Backend::Vector) {
        axpy_vector(y, a, x, n);
    } else {
        axpy_scalar(y, a, x, n);
    }
}

double dot(const double* a, const double* b, std::size_t n) {
    return active_backend() == Backend::Vector ? dot_vector(a, b, n)
                                               : dot_scalar(a, b, n);
}

void normal_equations(const double* a, std::size_t rows, std::size_t cols,
                      double* out) {
    std::fill(out, out + cols * cols, 0.0);
    // Row outer products in row order, skipping exact zeros: per output
    // element this is the same addition sequence as the classic
    // out(i, j) = sum_r a(r, i) * a(r, j) column loop, but the inner
    // traversal is a contiguous axpy over the row.
    for (std::size_t r = 0; r < rows; ++r) {
        const double* row = a + r * cols;
        for (std::size_t i = 0; i < cols; ++i) {
            const double v = row[i];
            if (v == 0.0) {
                continue;
            }
            axpy(out + i * cols, v, row, cols);
        }
    }
}

}  // namespace extradeep::simd
