#include "common/linalg.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace extradeep::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t(c, r) = (*this)(r, c);
        }
    }
    return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
    if (cols_ != rhs.rows_) {
        throw InvalidArgumentError("Matrix multiply: dimension mismatch");
    }
    Matrix out(rows_, rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double v = (*this)(r, k);
            if (v == 0.0) continue;
            for (std::size_t c = 0; c < rhs.cols_; ++c) {
                out(r, c) += v * rhs(k, c);
            }
        }
    }
    return out;
}

namespace {

// Cholesky factor L with S = L L^T, in-place into a copy. Returns false if
// not SPD (within a relative tolerance on the diagonal).
bool cholesky(const Matrix& s, Matrix& l) {
    const std::size_t n = s.rows();
    if (s.cols() != n) return false;
    l = Matrix(n, n);
    double max_diag = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        max_diag = std::max(max_diag, std::abs(s(i, i)));
    }
    const double tol = 1e-13 * (max_diag > 0 ? max_diag : 1.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = s(i, j);
            for (std::size_t k = 0; k < j; ++k) {
                acc -= l(i, k) * l(j, k);
            }
            if (i == j) {
                if (acc <= tol) return false;
                l(i, i) = std::sqrt(acc);
            } else {
                l(i, j) = acc / l(j, j);
            }
        }
    }
    return true;
}

std::vector<double> cholesky_solve(const Matrix& l, const std::vector<double>& b) {
    const std::size_t n = l.rows();
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k) {
            acc -= l(i, k) * y[k];
        }
        y[i] = acc / l(i, i);
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) {
            acc -= l(k, ii) * x[k];
        }
        x[ii] = acc / l(ii, ii);
    }
    return x;
}

}  // namespace

std::vector<double> solve_spd(const Matrix& s, const std::vector<double>& b) {
    if (s.rows() != s.cols() || s.rows() != b.size()) {
        throw InvalidArgumentError("solve_spd: dimension mismatch");
    }
    Matrix l;
    if (!cholesky(s, l)) {
        throw NumericalError("solve_spd: matrix is not positive definite");
    }
    return cholesky_solve(l, b);
}

Matrix invert_spd(const Matrix& s) {
    const std::size_t n = s.rows();
    if (s.cols() != n) {
        throw InvalidArgumentError("invert_spd: matrix not square");
    }
    Matrix l;
    if (!cholesky(s, l)) {
        throw NumericalError("invert_spd: matrix is not positive definite");
    }
    Matrix inv(n, n);
    std::vector<double> e(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
        e.assign(n, 0.0);
        e[c] = 1.0;
        const std::vector<double> col = cholesky_solve(l, e);
        for (std::size_t r = 0; r < n; ++r) {
            inv(r, c) = col[r];
        }
    }
    return inv;
}

LeastSquaresResult least_squares(const Matrix& a, const std::vector<double>& b) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m < n) {
        throw InvalidArgumentError("least_squares: fewer rows than columns");
    }
    if (b.size() != m) {
        throw InvalidArgumentError("least_squares: rhs size mismatch");
    }

    // Householder QR, overwriting a working copy of A; b is transformed along.
    Matrix r = a;
    std::vector<double> rhs = b;
    std::vector<double> dots;
    double col_norm_max = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        // Column norm below the pivot.
        double norm = 0.0;
        for (std::size_t i = k; i < m; ++i) {
            norm += r(i, k) * r(i, k);
        }
        norm = std::sqrt(norm);
        col_norm_max = std::max(col_norm_max, norm);
        if (norm == 0.0) {
            continue;  // handled as rank deficiency in back substitution
        }
        const double alpha = r(k, k) >= 0.0 ? -norm : norm;
        // Householder vector v = x - alpha*e1, stored temporarily.
        std::vector<double> v(m - k, 0.0);
        v[0] = r(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i) {
            v[i - k] = r(i, k);
        }
        double vnorm2 = 0.0;
        for (double x : v) vnorm2 += x * x;
        if (vnorm2 == 0.0) {
            continue;
        }
        // Apply H = I - 2 v v^T / (v^T v) to the trailing block and to rhs.
        // Loop-interchanged so the inner traversal runs along contiguous row
        // segments (simd::axpy): dots[c - k] accumulates v^T R(:, c) in the
        // same ascending-i order as a per-column loop, so the result is
        // bit-identical to the column-at-a-time formulation.
        dots.assign(n - k, 0.0);
        for (std::size_t i = k; i < m; ++i) {
            simd::axpy(dots.data(), v[i - k], r.row(i) + k, n - k);
        }
        for (std::size_t j = 0; j < n - k; ++j) {
            dots[j] = 2.0 * dots[j] / vnorm2;
        }
        for (std::size_t i = k; i < m; ++i) {
            simd::axpy(r.row(i) + k, -v[i - k], dots.data(), n - k);
        }
        {
            double dot = 0.0;
            for (std::size_t i = k; i < m; ++i) {
                dot += v[i - k] * rhs[i];
            }
            const double f = 2.0 * dot / vnorm2;
            for (std::size_t i = k; i < m; ++i) {
                rhs[i] -= f * v[i - k];
            }
        }
    }

    LeastSquaresResult out;
    out.coefficients.assign(n, 0.0);
    const double rank_tol = 1e-11 * (col_norm_max > 0 ? col_norm_max : 1.0);
    // Back substitution on the upper-triangular R.
    for (std::size_t ii = n; ii-- > 0;) {
        if (std::abs(r(ii, ii)) <= rank_tol) {
            out.coefficients[ii] = 0.0;
            out.rank_deficient = true;
            continue;
        }
        double acc = rhs[ii];
        for (std::size_t c = ii + 1; c < n; ++c) {
            acc -= r(ii, c) * out.coefficients[c];
        }
        out.coefficients[ii] = acc / r(ii, ii);
    }
    double res2 = 0.0;
    for (std::size_t i = n; i < m; ++i) {
        res2 += rhs[i] * rhs[i];
    }
    // Rank-deficient rows above n also contribute residual; recompute directly
    // for robustness when flagged.
    if (out.rank_deficient) {
        res2 = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            double pred = 0.0;
            for (std::size_t c = 0; c < n; ++c) {
                pred += a(i, c) * out.coefficients[c];
            }
            const double d = pred - b[i];
            res2 += d * d;
        }
    }
    out.residual_norm = std::sqrt(res2);

    // Unscaled covariance (A^T A)^{-1}; skip when rank deficient (the
    // hypothesis will be rejected by the model selector anyway).
    if (!out.rank_deficient) {
        Matrix ata(n, n);
        simd::normal_equations(a.data(), m, n, ata.data());
        try {
            out.covariance_unscaled = invert_spd(ata);
        } catch (const NumericalError&) {
            out.rank_deficient = true;
        }
    }
    return out;
}

}  // namespace extradeep::linalg
