#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace extradeep::stats {

namespace {

void require_non_empty(std::span<const double> values, const char* fn) {
    if (values.empty()) {
        throw InvalidArgumentError(std::string(fn) + ": empty input");
    }
}

std::vector<double> sorted_copy(std::span<const double> values) {
    std::vector<double> v(values.begin(), values.end());
    std::sort(v.begin(), v.end());
    return v;
}

}  // namespace

double sum(std::span<const double> values) {
    // Kahan summation: aggregation sums thousands of kernel durations whose
    // magnitudes span microseconds to minutes.
    double s = 0.0;
    double c = 0.0;
    for (double x : values) {
        double y = x - c;
        double t = s + y;
        c = (t - s) - y;
        s = t;
    }
    return s;
}

double mean(std::span<const double> values) {
    require_non_empty(values, "mean");
    return sum(values) / static_cast<double>(values.size());
}

double median(std::span<const double> values) {
    require_non_empty(values, "median");
    std::vector<double> v = sorted_copy(values);
    const std::size_t n = v.size();
    if (n % 2 == 1) {
        return v[n / 2];
    }
    return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double quantile(std::span<const double> values, double q) {
    require_non_empty(values, "quantile");
    if (q < 0.0 || q > 1.0) {
        throw InvalidArgumentError("quantile: q outside [0, 1]");
    }
    std::vector<double> v = sorted_copy(values);
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

double stddev(std::span<const double> values) {
    require_non_empty(values, "stddev");
    if (values.size() == 1) {
        return 0.0;
    }
    const double m = mean(values);
    double acc = 0.0;
    for (double x : values) {
        acc += (x - m) * (x - m);
    }
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double mad(std::span<const double> values) {
    require_non_empty(values, "mad");
    const double med = median(values);
    std::vector<double> dev;
    dev.reserve(values.size());
    for (double x : values) {
        dev.push_back(std::abs(x - med));
    }
    return median(dev);
}

double coefficient_of_variation(std::span<const double> values) {
    const double m = mean(values);
    if (m == 0.0) {
        throw InvalidArgumentError("coefficient_of_variation: zero mean");
    }
    return stddev(values) / std::abs(m);
}

double smape(std::span<const double> predicted, std::span<const double> actual) {
    if (predicted.size() != actual.size()) {
        throw InvalidArgumentError("smape: size mismatch");
    }
    require_non_empty(actual, "smape");
    double acc = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double denom = (std::abs(predicted[i]) + std::abs(actual[i])) / 2.0;
        if (denom > 0.0) {
            acc += std::abs(predicted[i] - actual[i]) / denom;
        }
    }
    return 100.0 * acc / static_cast<double>(actual.size());
}

double mape(std::span<const double> predicted, std::span<const double> actual) {
    if (predicted.size() != actual.size()) {
        throw InvalidArgumentError("mape: size mismatch");
    }
    require_non_empty(actual, "mape");
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        if (actual[i] != 0.0) {
            acc += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
            ++n;
        }
    }
    if (n == 0) {
        throw InvalidArgumentError("mape: all actual values are zero");
    }
    return 100.0 * acc / static_cast<double>(n);
}

double percent_error(double predicted, double actual) {
    if (actual == 0.0) {
        throw InvalidArgumentError("percent_error: actual value is zero");
    }
    return 100.0 * std::abs(predicted - actual) / std::abs(actual);
}

double rss(std::span<const double> predicted, std::span<const double> actual) {
    if (predicted.size() != actual.size()) {
        throw InvalidArgumentError("rss: size mismatch");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double d = predicted[i] - actual[i];
        acc += d * d;
    }
    return acc;
}

double r_squared(std::span<const double> predicted, std::span<const double> actual) {
    require_non_empty(actual, "r_squared");
    const double residual = rss(predicted, actual);
    const double m = mean(actual);
    double tss = 0.0;
    for (double a : actual) {
        tss += (a - m) * (a - m);
    }
    if (tss == 0.0) {
        return residual == 0.0 ? 1.0 : 0.0;
    }
    return 1.0 - residual / tss;
}

double min(std::span<const double> values) {
    require_non_empty(values, "min");
    return *std::min_element(values.begin(), values.end());
}

double max(std::span<const double> values) {
    require_non_empty(values, "max");
    return *std::max_element(values.begin(), values.end());
}

double run_to_run_variation(std::span<const double> values) {
    require_non_empty(values, "run_to_run_variation");
    const double med = median(values);
    if (med == 0.0) {
        throw InvalidArgumentError("run_to_run_variation: zero median");
    }
    return 100.0 * (max(values) - min(values)) / std::abs(med);
}

}  // namespace extradeep::stats
