#pragma once

#include <cstddef>

namespace extradeep::simd {

/// Portable vectorised kernels for the fitter's hot loops (basis-column
/// evaluation, Householder updates, normal-equation assembly), with a
/// scalar reference implementation selectable at runtime.
///
/// Bit-identity contract: for every kernel, the Scalar and Vector backends
/// execute the same floating-point operations on the same elements in the
/// same order — the vector backend only widens *elementwise* operations
/// (x[i] op y[i]), never reassociates a reduction. dot() is the one
/// reduction in this library; it uses a fixed 4-lane accumulation tree that
/// both backends implement identically. Consequently every result is
/// bit-identical across backends (asserted by tests/test_simd.cpp and the
/// fitter equivalence suite in tests/test_fitter_parallel.cpp).

enum class Backend {
    Scalar,  ///< plain reference loops
    Vector,  ///< 4-lane unrolled / compiler-vector kernels
};

/// The process-wide active backend. Defaults to Vector, overridable via the
/// environment variable EXTRADEEP_SIMD=scalar|vector (read once, on first
/// use) or programmatically via set_backend (e.g. from tests/benchmarks).
Backend active_backend();
void set_backend(Backend backend);
const char* backend_name(Backend backend);

/// dst[i] *= src[i] for i in [0, n). (Basis term columns: the product of a
/// term's cached factor columns.)
void mul_inplace(double* dst, const double* src, std::size_t n);

/// y[i] += a * x[i] for i in [0, n). (Householder reflector application and
/// row-wise normal-equation accumulation.)
void axpy(double* y, double a, const double* x, std::size_t n);

/// Fixed 4-lane dot product: lane l accumulates elements i with i % 4 == l
/// of each aligned quad, tail elements fill lanes 0..r-1, and the result is
/// (l0 + l1) + (l2 + l3). Both backends implement exactly this tree.
double dot(const double* a, const double* b, std::size_t n);

/// out = A^T A for the row-major rows x cols matrix `a`; `out` is row-major
/// cols x cols and is overwritten. Accumulates row outer products in row
/// order with the historical zero-skip (rows whose i-th entry is exactly
/// 0.0 contribute nothing to out(i, *)), so the result is bit-identical to
/// the loop nest it replaced — and, per the elementwise rule above,
/// identical across backends.
void normal_equations(const double* a, std::size_t rows, std::size_t cols,
                      double* out);

}  // namespace extradeep::simd
