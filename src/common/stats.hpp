#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace extradeep::stats {

/// Arithmetic mean of a non-empty sample. Throws InvalidArgumentError on
/// empty input.
double mean(std::span<const double> values);

/// Median of a non-empty sample (average of the two middle elements for even
/// sizes). Does not require the input to be sorted. Throws on empty input.
double median(std::span<const double> values);

/// Linear-interpolation quantile (type-7, the numpy default). `q` must lie in
/// [0, 1]. Throws on empty input or out-of-range `q`.
double quantile(std::span<const double> values, double q);

/// Unbiased (n-1) sample standard deviation; returns 0 for samples of size 1.
double stddev(std::span<const double> values);

/// Median absolute deviation (unscaled).
double mad(std::span<const double> values);

/// Coefficient of variation: stddev / |mean|. Throws if the mean is zero.
double coefficient_of_variation(std::span<const double> values);

/// Symmetric mean absolute percentage error between predictions and
/// actuals, in percent, following the Extra-P convention:
///   SMAPE = 100/n * sum |p_i - a_i| / ((|p_i| + |a_i|) / 2)
/// Pairs where both values are zero contribute zero error. Throws if the
/// spans differ in length or are empty.
double smape(std::span<const double> predicted, std::span<const double> actual);

/// Mean absolute percentage error in percent, |p - a| / |a| averaged.
/// Pairs with a == 0 are skipped; throws if all pairs are skipped.
double mape(std::span<const double> predicted, std::span<const double> actual);

/// Percentage error of a single prediction against a single actual value,
/// in percent: 100 * |p - a| / |a|. Throws if `actual` is zero.
double percent_error(double predicted, double actual);

/// Residual sum of squares.
double rss(std::span<const double> predicted, std::span<const double> actual);

/// Coefficient of determination R^2 = 1 - RSS/TSS. Returns 1.0 when the
/// actuals are constant and perfectly predicted, 0.0 when constant but
/// mispredicted.
double r_squared(std::span<const double> predicted, std::span<const double> actual);

/// Sum of all values (Kahan-compensated).
double sum(std::span<const double> values);

/// Minimum / maximum of a non-empty sample.
double min(std::span<const double> values);
double max(std::span<const double> values);

/// Run-to-run variation of repeated measurements of the same configuration,
/// in percent: 100 * (max - min) / median. Used to report noise levels as in
/// the paper's case study (Sec. 2.3). Throws on empty input or zero median.
double run_to_run_variation(std::span<const double> values);

}  // namespace extradeep::stats
