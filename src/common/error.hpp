#pragma once

#include <stdexcept>
#include <string>

namespace extradeep {

/// Base class for all errors raised by the Extra-Deep library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when input data is malformed or violates a precondition
/// (e.g. too few measurement points for modeling).
class InvalidArgumentError : public Error {
public:
    explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Raised on profile/trace file parse failures.
class ParseError : public Error {
public:
    explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when a numerical routine fails to converge or encounters a
/// singular system.
class NumericalError : public Error {
public:
    explicit NumericalError(const std::string& what) : Error(what) {}
};

}  // namespace extradeep
