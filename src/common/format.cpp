#include "common/format.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace extradeep::fmt {

std::string fixed(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string percent(double value, int decimals) {
    return fixed(value, decimals) + "%";
}

std::string seconds(double secs) {
    const double a = std::abs(secs);
    char buf[64];
    if (a < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.3g us", secs * 1e6);
    } else if (a < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.3g ms", secs * 1e3);
    } else if (a < 120.0) {
        std::snprintf(buf, sizeof(buf), "%.3g s", secs);
    } else if (a < 7200.0) {
        std::snprintf(buf, sizeof(buf), "%.3g min", secs / 60.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3g h", secs / 3600.0);
    }
    return buf;
}

std::string bytes(double n) {
    char buf[64];
    const double a = std::abs(n);
    if (a < 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.0f B", n);
    } else if (a < 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.2f KiB", n / 1024.0);
    } else if (a < 1024.0 * 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.2f MiB", n / (1024.0 * 1024.0));
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f GiB", n / (1024.0 * 1024.0 * 1024.0));
    }
    return buf;
}

std::string count(std::int64_t n) {
    const bool neg = n < 0;
    std::string digits = std::to_string(neg ? -n : n);
    std::string out;
    int seen = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (seen && seen % 3 == 0) {
            out.push_back(',');
        }
        out.push_back(*it);
        ++seen;
    }
    if (neg) out.push_back('-');
    return std::string(out.rbegin(), out.rend());
}

std::string shortest(double value) {
    if (std::isnan(value)) return "nan";
    if (std::isinf(value)) return value > 0.0 ? "inf" : "-inf";
    char buf[64];
    // Try increasing significand lengths until the rendering parses back to
    // the identical bit pattern; 17 (max_digits10) always succeeds.
    for (int digits = 1; digits <= 17; ++digits) {
        std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
        char* end = nullptr;
        const double back = std::strtod(buf, &end);
        if (end != nullptr && *end == '\0' && back == value &&
            std::signbit(back) == std::signbit(value)) {
            return buf;
        }
    }
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string hexfloat(double value) {
    if (std::isnan(value)) return "nan";
    if (std::isinf(value)) return value > 0.0 ? "inf" : "-inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", value);
    return buf;
}

bool parse_double(std::string_view text, double& out) {
    if (text.empty()) return false;
    // strtod needs NUL termination; inputs here are short numeric tokens.
    const std::string token(text);
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) return false;
    out = v;
    return true;
}

std::string coeff(double value) {
    const double a = std::abs(value);
    char buf[64];
    if (value == 0.0) {
        return "0";
    }
    if (a >= 1e-3 && a < 1e5) {
        std::snprintf(buf, sizeof(buf), "%.4g", value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3e", value);
    }
    return buf;
}

}  // namespace extradeep::fmt
