#pragma once

#include <cstdint>

namespace extradeep {

/// Deterministic, reproducible pseudo-random generator (xoshiro256++ seeded
/// through SplitMix64). The standard library engines/distributions are
/// avoided on purpose: their output is implementation defined, and the
/// simulator's noise must be bit-reproducible so that tests and benches give
/// identical results everywhere.
class Rng {
public:
    /// Seeds the generator. Any 64-bit value is acceptable, including 0.
    explicit Rng(std::uint64_t seed);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform01();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Standard normal variate (Box-Muller, both values used).
    double normal();

    /// Normal variate with given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Mean-one multiplicative log-normal noise factor:
    /// exp(N(-sigma^2/2, sigma^2)), so E[factor] == 1 for any sigma >= 0.
    /// This is the simulator's run-to-run noise primitive.
    double lognormal_factor(double sigma);

    /// Bernoulli trial with probability p of returning true.
    bool bernoulli(double p);

    /// Exponential variate with the given mean (> 0).
    double exponential(double mean);

    /// Poisson variate. Knuth's method for small means, normal approximation
    /// (rounded, clamped at zero) for mean > 64.
    std::int64_t poisson(double mean);

    /// Derives an independent deterministic child stream. Two forks with
    /// different `stream` values (or from generators with different seeds)
    /// produce statistically independent sequences; the parent state is not
    /// advanced. Used to give every (configuration, rank, repetition) its
    /// own noise stream.
    Rng fork(std::uint64_t stream) const;

    // UniformRandomBitGenerator interface, so the engine is usable with
    // std::shuffle and friends.
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~static_cast<result_type>(0); }
    result_type operator()() { return next_u64(); }

private:
    Rng() = default;
    std::uint64_t state_[4] = {};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
    std::uint64_t origin_seed_ = 0;
};

/// SplitMix64 step; exposed for hashing/seed-mixing needs elsewhere.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of two values (used to build hierarchical seeds such
/// as seed(config, rank, repetition)).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

}  // namespace extradeep
