#include "common/diagnostics.hpp"

#include <sstream>

#include "common/error.hpp"

namespace extradeep {

std::string_view severity_name(Severity severity) {
    switch (severity) {
        case Severity::Info: return "info";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    throw InvalidArgumentError("severity_name: unknown severity");
}

std::string Diagnostic::format() const {
    std::ostringstream os;
    os << severity_name(severity);
    if (line >= 0 || rank >= 0) {
        os << " [";
        if (line >= 0) {
            os << "line " << line;
            if (rank >= 0) os << ", ";
        }
        if (rank >= 0) {
            os << "rank " << rank;
        }
        os << "]";
    }
    os << ": " << reason;
    return os.str();
}

void DiagnosticLog::add(Severity severity, std::string reason, long long line,
                        int rank) {
    Diagnostic d;
    d.severity = severity;
    d.reason = std::move(reason);
    d.line = line;
    d.rank = rank;
    add(std::move(d));
}

void DiagnosticLog::add(Diagnostic d) {
    ++total_;
    ++counts_[static_cast<int>(d.severity)];
    if (entries_.size() < capacity_) {
        entries_.push_back(std::move(d));
    }
}

void DiagnosticLog::merge(const DiagnosticLog& other) {
    for (const auto& d : other.entries_) {
        if (entries_.size() < capacity_) {
            entries_.push_back(d);
        }
    }
    total_ += other.total_;
    for (int i = 0; i < 3; ++i) {
        counts_[i] += other.counts_[i];
    }
}

std::size_t DiagnosticLog::count(Severity severity) const {
    return counts_[static_cast<int>(severity)];
}

std::string DiagnosticLog::summary() const {
    if (total_ == 0) {
        return "clean";
    }
    std::ostringstream os;
    bool first = true;
    const Severity order[] = {Severity::Error, Severity::Warning,
                              Severity::Info};
    const char* plural[] = {"infos", "warnings", "errors"};
    for (const Severity s : order) {
        const std::size_t n = count(s);
        if (n == 0) continue;
        if (!first) os << ", ";
        first = false;
        if (n == 1) {
            os << "1 " << severity_name(s);
        } else {
            os << n << ' ' << plural[static_cast<int>(s)];
        }
    }
    return os.str();
}

}  // namespace extradeep
