#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace extradeep {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
    std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    return splitmix64(s);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    origin_seed_ = seed;
    std::uint64_t sm = seed;
    for (auto& s : state_) {
        s = splitmix64(sm);
    }
}

std::uint64_t Rng::next_u64() {
    // xoshiro256++
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform01() {
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) {
        throw InvalidArgumentError("uniform_int: lo > hi");
    }
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) {  // full 64-bit range
        return static_cast<std::int64_t>(next_u64());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~static_cast<std::uint64_t>(0)) -
                                (~static_cast<std::uint64_t>(0)) % range;
    std::uint64_t v;
    do {
        v = next_u64();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 must be > 0.
    double u1;
    do {
        u1 = uniform01();
    } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    cached_normal_ = r * std::sin(2.0 * M_PI * u2);
    has_cached_normal_ = true;
    return r * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
    return mean + stddev * normal();
}

double Rng::lognormal_factor(double sigma) {
    if (sigma < 0.0) {
        throw InvalidArgumentError("lognormal_factor: negative sigma");
    }
    if (sigma == 0.0) {
        return 1.0;
    }
    return std::exp(normal(-0.5 * sigma * sigma, sigma));
}

bool Rng::bernoulli(double p) {
    return uniform01() < p;
}

double Rng::exponential(double mean) {
    if (mean <= 0.0) {
        throw InvalidArgumentError("exponential: mean must be positive");
    }
    double u;
    do {
        u = uniform01();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

std::int64_t Rng::poisson(double mean) {
    if (mean < 0.0) {
        throw InvalidArgumentError("poisson: negative mean");
    }
    if (mean == 0.0) {
        return 0;
    }
    if (mean > 64.0) {
        const double v = normal(mean, std::sqrt(mean));
        return v <= 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= uniform01();
    } while (p > limit);
    return k - 1;
}

Rng Rng::fork(std::uint64_t stream) const {
    return Rng(mix64(origin_seed_, stream));
}

}  // namespace extradeep
