#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aggregation/experiment.hpp"
#include "modeling/fitter.hpp"

namespace extradeep {

/// Computes the analytical step counts n_t/n_v (Eqs. 2-3) for a rank count.
using StepMathFn = std::function<parallel::StepMath(int ranks)>;

/// Builds the analytical step-count function from the experiment parameters
/// alone (Eqs. 2-3). This is the export/import hook of model persistence:
/// the .edpm format stores exactly these five values, and a loaded model
/// reconstructs a StepMathFn that is bit-identical to the one the runner
/// used at fit time (the step math is pure integer arithmetic over the
/// dataset spec). Throws InvalidArgumentError for unknown dataset names.
StepMathFn make_step_math_fn(const std::string& dataset,
                             parallel::StrategyKind strategy,
                             int model_parallel_degree,
                             parallel::ScalingMode scaling,
                             std::int64_t batch_per_worker);

/// A per-epoch performance model following Eqs. 2-5: PMNF models of the
/// per-step metric value, separately for training and validation steps,
/// scaled by the *analytically known* step counts,
///   F(x1) = n_t(x1) * Vt(x1) + n_v(x1) * Vv(x1).
/// The n_t factor carries the 1/x1 dependence of strong scaling (Eq. 2)
/// exactly, so only the smooth per-step behaviour has to be learned - this
/// is how the G/M/B analytical values "adapt the extrapolation methodology
/// to the employed parallel strategy" (paper Sec. 2.3.1).
class EpochModel {
public:
    EpochModel() = default;
    EpochModel(modeling::PerformanceModel train_step,
               modeling::PerformanceModel val_step, StepMathFn steps);

    /// Predicted per-epoch metric value at x1 ranks.
    double evaluate(double x1) const;

    /// Prediction interval: the per-step intervals scaled by n_t / n_v.
    modeling::PredictionInterval predict_interval(double x1,
                                                  double confidence = 0.95) const;

    /// Half-width of predict_interval at x1: the per-step half-widths
    /// scaled by n_t / n_v. Drives the serve `plan` verb's acquisition
    /// scores (which configuration is the model least certain about).
    double interval_half_width(double x1, double confidence = 0.95) const;

    /// Rendering, e.g. "n_t(x1) * [0.4 + 0.08 * log2(x1)] + n_v(x1) * [...]".
    std::string to_string() const;

    /// Goodness of fit of the training-step model (the dominant component).
    const modeling::ModelQuality& quality() const;

    /// The underlying per-step PMNF models (e.g. for growth ranking).
    const modeling::PerformanceModel& train_step_model() const {
        return train_step_;
    }
    const modeling::PerformanceModel& val_step_model() const { return val_step_; }

private:
    modeling::PerformanceModel train_step_;
    modeling::PerformanceModel val_step_;
    StepMathFn steps_;
};

/// One fitted kernel model: the kernel, the metric it models, and the
/// per-epoch model of its derived value (Eq. 4 + Eq. 5).
struct KernelModelEntry {
    std::string name;
    trace::KernelCategory category = trace::KernelCategory::CudaKernel;
    aggregation::Metric metric = aggregation::Metric::Time;
    EpochModel model;
};

/// Builds per-epoch models for every modelable kernel (Fig. 2 step (4):
/// present in at least five configurations) and each requested metric.
/// Metric series that are identically zero (e.g. bytes of pure compute
/// kernels) are skipped. `steps` provides n_t/n_v for any rank count.
std::vector<KernelModelEntry> model_kernels(
    const aggregation::ExperimentData& data, const StepMathFn& steps,
    const std::vector<aggregation::Metric>& metrics,
    const modeling::ModelGenerator& generator = modeling::ModelGenerator(),
    int min_configs = aggregation::kMinModelingPoints);

/// Model vs. measured comparison at one evaluation point.
struct PredictionEval {
    double x = 0.0;
    double predicted = 0.0;
    double measured = 0.0;
    double percent_error = 0.0;  ///< 100 |pred - meas| / |meas|
};

/// Evaluates a model against measured values at the given points.
std::vector<PredictionEval> evaluate_model(const EpochModel& model,
                                           const std::vector<double>& xs,
                                           const std::vector<double>& measured);

/// Median percentage error over a set of evaluations (the MPE of the
/// paper's Figs. 5-7 and Table 2).
double median_percent_error(const std::vector<PredictionEval>& evals);

}  // namespace extradeep
