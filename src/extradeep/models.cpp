#include "extradeep/models.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace extradeep {

EpochModel::EpochModel(modeling::PerformanceModel train_step,
                       modeling::PerformanceModel val_step, StepMathFn steps)
    : train_step_(std::move(train_step)),
      val_step_(std::move(val_step)),
      steps_(std::move(steps)) {
    if (!steps_) {
        throw InvalidArgumentError("EpochModel: null StepMathFn");
    }
}

double EpochModel::evaluate(double x1) const {
    if (!steps_) {
        throw InvalidArgumentError("EpochModel: uninitialised model");
    }
    const parallel::StepMath sm = steps_(static_cast<int>(std::llround(x1)));
    return static_cast<double>(sm.train_steps) * train_step_.evaluate(x1) +
           static_cast<double>(sm.val_steps) * val_step_.evaluate(x1);
}

modeling::PredictionInterval EpochModel::predict_interval(
    double x1, double confidence) const {
    if (!steps_) {
        throw InvalidArgumentError("EpochModel: uninitialised model");
    }
    const parallel::StepMath sm = steps_(static_cast<int>(std::llround(x1)));
    const auto t = train_step_.predict_interval(x1, confidence);
    const auto v = val_step_.predict_interval(x1, confidence);
    const double nt = static_cast<double>(sm.train_steps);
    const double nv = static_cast<double>(sm.val_steps);
    modeling::PredictionInterval out;
    out.prediction = nt * t.prediction + nv * v.prediction;
    out.lower = nt * t.lower + nv * v.lower;
    out.upper = nt * t.upper + nv * v.upper;
    return out;
}

std::string EpochModel::to_string() const {
    std::ostringstream os;
    os << "n_t(x1) * [" << train_step_.to_string() << "] + n_v(x1) * ["
       << val_step_.to_string() << "]";
    return os.str();
}

const modeling::ModelQuality& EpochModel::quality() const {
    return train_step_.quality();
}

std::vector<KernelModelEntry> model_kernels(
    const aggregation::ExperimentData& data, const StepMathFn& steps,
    const std::vector<aggregation::Metric>& metrics,
    const modeling::ModelGenerator& generator, int min_configs) {
    if (!steps) {
        throw InvalidArgumentError("model_kernels: null StepMathFn");
    }
    std::vector<KernelModelEntry> out;
    const auto kernel_names = data.modelable_kernels(min_configs);
    for (const auto& name : kernel_names) {
        for (const auto metric : metrics) {
            std::vector<double> xs;
            std::vector<double> train_values;
            std::vector<double> val_values;
            bool all_zero = true;
            for (const auto& config : data.configs()) {
                const aggregation::KernelStats* k = config.find_kernel(name);
                if (k == nullptr) {
                    continue;  // kernel absent at this point
                }
                xs.push_back(config.params.at("x1"));
                train_values.push_back(k->train_metric(metric));
                val_values.push_back(k->val_metric(metric));
                if (train_values.back() != 0.0 || val_values.back() != 0.0) {
                    all_zero = false;
                }
            }
            if (all_zero || xs.size() < static_cast<std::size_t>(min_configs)) {
                continue;
            }
            KernelModelEntry entry;
            entry.name = name;
            entry.category = data.kernel_category(name);
            entry.metric = metric;
            entry.model = EpochModel(generator.fit(xs, train_values),
                                     generator.fit(xs, val_values), steps);
            out.push_back(std::move(entry));
        }
    }
    return out;
}

std::vector<PredictionEval> evaluate_model(const EpochModel& model,
                                           const std::vector<double>& xs,
                                           const std::vector<double>& measured) {
    if (xs.size() != measured.size()) {
        throw InvalidArgumentError("evaluate_model: size mismatch");
    }
    std::vector<PredictionEval> out;
    out.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        PredictionEval e;
        e.x = xs[i];
        e.predicted = model.evaluate(xs[i]);
        e.measured = measured[i];
        e.percent_error = measured[i] == 0.0
                              ? std::abs(e.predicted) > 0.0 ? 100.0 : 0.0
                              : stats::percent_error(e.predicted, e.measured);
        out.push_back(e);
    }
    return out;
}

double median_percent_error(const std::vector<PredictionEval>& evals) {
    if (evals.empty()) {
        throw InvalidArgumentError("median_percent_error: empty input");
    }
    std::vector<double> errors;
    errors.reserve(evals.size());
    for (const auto& e : evals) {
        errors.push_back(e.percent_error);
    }
    return stats::median(errors);
}

}  // namespace extradeep
