#include "extradeep/models.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "common/stats.hpp"
#include "dnn/datasets.hpp"
#include "parallel/steps.hpp"

namespace extradeep {

StepMathFn make_step_math_fn(const std::string& dataset,
                             parallel::StrategyKind strategy,
                             int model_parallel_degree,
                             parallel::ScalingMode scaling,
                             std::int64_t batch_per_worker) {
    const dnn::DatasetSpec spec = dnn::dataset_spec(dataset);
    const int m = model_parallel_degree;
    return [spec, strategy, m, scaling, batch_per_worker](int ranks) {
        parallel::ParallelConfig cfg;
        switch (strategy) {
            case parallel::StrategyKind::Data:
                cfg = parallel::ParallelConfig::data(ranks);
                break;
            case parallel::StrategyKind::Tensor:
                cfg = parallel::ParallelConfig::tensor(ranks, m);
                break;
            case parallel::StrategyKind::Pipeline:
                cfg = parallel::ParallelConfig::pipeline(ranks, m);
                break;
        }
        return parallel::compute_steps(spec, cfg, batch_per_worker, scaling);
    };
}

EpochModel::EpochModel(modeling::PerformanceModel train_step,
                       modeling::PerformanceModel val_step, StepMathFn steps)
    : train_step_(std::move(train_step)),
      val_step_(std::move(val_step)),
      steps_(std::move(steps)) {
    if (!steps_) {
        throw InvalidArgumentError("EpochModel: null StepMathFn");
    }
}

double EpochModel::evaluate(double x1) const {
    if (!steps_) {
        throw InvalidArgumentError("EpochModel: uninitialised model");
    }
    const parallel::StepMath sm = steps_(static_cast<int>(std::llround(x1)));
    return static_cast<double>(sm.train_steps) * train_step_.evaluate(x1) +
           static_cast<double>(sm.val_steps) * val_step_.evaluate(x1);
}

modeling::PredictionInterval EpochModel::predict_interval(
    double x1, double confidence) const {
    if (!steps_) {
        throw InvalidArgumentError("EpochModel: uninitialised model");
    }
    const parallel::StepMath sm = steps_(static_cast<int>(std::llround(x1)));
    const auto t = train_step_.predict_interval(x1, confidence);
    const auto v = val_step_.predict_interval(x1, confidence);
    const double nt = static_cast<double>(sm.train_steps);
    const double nv = static_cast<double>(sm.val_steps);
    modeling::PredictionInterval out;
    out.prediction = nt * t.prediction + nv * v.prediction;
    out.lower = nt * t.lower + nv * v.lower;
    out.upper = nt * t.upper + nv * v.upper;
    return out;
}

double EpochModel::interval_half_width(double x1, double confidence) const {
    if (!steps_) {
        throw InvalidArgumentError("EpochModel: uninitialised model");
    }
    const parallel::StepMath sm = steps_(static_cast<int>(std::llround(x1)));
    return static_cast<double>(sm.train_steps) *
               train_step_.interval_half_width(x1, confidence) +
           static_cast<double>(sm.val_steps) *
               val_step_.interval_half_width(x1, confidence);
}

std::string EpochModel::to_string() const {
    std::ostringstream os;
    os << "n_t(x1) * [" << train_step_.to_string() << "] + n_v(x1) * ["
       << val_step_.to_string() << "]";
    return os.str();
}

const modeling::ModelQuality& EpochModel::quality() const {
    return train_step_.quality();
}

std::vector<KernelModelEntry> model_kernels(
    const aggregation::ExperimentData& data, const StepMathFn& steps,
    const std::vector<aggregation::Metric>& metrics,
    const modeling::ModelGenerator& generator, int min_configs) {
    if (!steps) {
        throw InvalidArgumentError("model_kernels: null StepMathFn");
    }
    // Gather the per-(kernel, metric) fit inputs serially, then run the
    // independent PMNF fits across the thread budget of the generator. When
    // the kernel loop is parallel the per-fit hypothesis search runs
    // serially (and vice versa), so the thread count is a single knob and
    // never oversubscribes.
    struct FitTask {
        std::string name;
        trace::KernelCategory category;
        aggregation::Metric metric;
        std::vector<double> xs;
        std::vector<double> train_values;
        std::vector<double> val_values;
    };
    std::vector<FitTask> tasks;
    const auto kernel_names = data.modelable_kernels(min_configs);
    for (const auto& name : kernel_names) {
        for (const auto metric : metrics) {
            FitTask task;
            task.name = name;
            task.category = data.kernel_category(name);
            task.metric = metric;
            bool all_zero = true;
            for (const auto& config : data.configs()) {
                const aggregation::KernelStats* k = config.find_kernel(name);
                if (k == nullptr) {
                    continue;  // kernel absent at this point
                }
                task.xs.push_back(config.params.at("x1"));
                task.train_values.push_back(k->train_metric(metric));
                task.val_values.push_back(k->val_metric(metric));
                if (task.train_values.back() != 0.0 ||
                    task.val_values.back() != 0.0) {
                    all_zero = false;
                }
            }
            if (all_zero ||
                task.xs.size() < static_cast<std::size_t>(min_configs)) {
                continue;
            }
            tasks.push_back(std::move(task));
        }
    }

    const int threads = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(
            resolve_num_threads(generator.options().num_threads)),
        std::max<std::size_t>(tasks.size(), 1)));
    modeling::FitOptions per_kernel_options = generator.options();
    per_kernel_options.num_threads = threads > 1 ? 1 : generator.options().num_threads;
    const modeling::ModelGenerator per_kernel_generator(per_kernel_options);

    std::vector<KernelModelEntry> out(tasks.size());
    ThreadPool pool(threads);
    pool.parallel_for(tasks.size(), [&](int, std::size_t begin,
                                        std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            const FitTask& task = tasks[i];
            KernelModelEntry& entry = out[i];
            entry.name = task.name;
            entry.category = task.category;
            entry.metric = task.metric;
            entry.model = EpochModel(
                per_kernel_generator.fit(task.xs, task.train_values),
                per_kernel_generator.fit(task.xs, task.val_values), steps);
        }
    });
    return out;
}

std::vector<PredictionEval> evaluate_model(const EpochModel& model,
                                           const std::vector<double>& xs,
                                           const std::vector<double>& measured) {
    if (xs.size() != measured.size()) {
        throw InvalidArgumentError("evaluate_model: size mismatch");
    }
    std::vector<PredictionEval> out;
    out.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        PredictionEval e;
        e.x = xs[i];
        e.predicted = model.evaluate(xs[i]);
        e.measured = measured[i];
        e.percent_error = measured[i] == 0.0
                              ? std::abs(e.predicted) > 0.0 ? 100.0 : 0.0
                              : stats::percent_error(e.predicted, e.measured);
        out.push_back(e);
    }
    return out;
}

double median_percent_error(const std::vector<PredictionEval>& evals) {
    if (evals.empty()) {
        throw InvalidArgumentError("median_percent_error: empty input");
    }
    std::vector<double> errors;
    errors.reserve(evals.size());
    for (const auto& e : evals) {
        errors.push_back(e.percent_error);
    }
    return stats::median(errors);
}

}  // namespace extradeep
