#include "extradeep/ingest.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace extradeep {

std::string IngestResult::summary() const {
    std::ostringstream os;
    os << "kept " << runs_kept << "/" << runs_total << " runs, "
       << configs_kept << "/" << configs_total << " configurations";
    if (!diagnostics.empty()) {
        os << "; " << diagnostics.summary();
    }
    return os.str();
}

IngestResult ingest_runs(
    std::span<const std::vector<profiling::ProfiledRun>> configs,
    const IngestOptions& options) {
    const obs::Span ingest_span{"ingest.runs"};
    IngestResult result;
    result.data = aggregation::ExperimentData(options.primary_parameter);
    result.configs_total = configs.size();
    for (const auto& runs : configs) {
        result.runs_total += runs.size();
    }

    aggregation::ExperimentVerdict verdict = [&] {
        const obs::Span validate_span{"ingest.validate_experiment"};
        return aggregation::validate_experiment(configs, options.validation);
    }();
    result.diagnostics.merge(verdict.diagnostics);

    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!verdict.keep_config[c]) {
            continue;
        }
        std::vector<profiling::ProfiledRun> kept;
        kept.reserve(configs[c].size());
        for (std::size_t r = 0; r < configs[c].size(); ++r) {
            if (verdict.keep_run[c][r]) {
                kept.push_back(configs[c][r]);
            }
        }
        // Validation guarantees aggregate_runs preconditions, but keep the
        // drop-not-throw contract even if an invariant slips through.
        try {
            const obs::Span aggregate_span{"ingest.aggregate_config"};
            result.data.add(
                aggregation::aggregate_runs(kept, options.aggregation));
        } catch (const Error& e) {
            result.diagnostics.add(
                Severity::Error,
                "configuration " + std::to_string(c) + " dropped: " + e.what());
            continue;
        }
        result.configs_kept += 1;
        result.runs_kept += kept.size();
    }
    if (obs::trace_enabled()) {
        obs::MetricsRegistry& metrics = obs::global_metrics();
        metrics.counter("extradeep_ingest_runs_total")
            .increment(result.runs_total);
        metrics.counter("extradeep_ingest_runs_dropped_total")
            .increment(result.runs_total - result.runs_kept);
        metrics.counter("extradeep_ingest_configs_total")
            .increment(result.configs_total);
    }
    return result;
}

IngestResult ingest_edp_files(std::span<const std::string> paths,
                              const IngestOptions& options) {
    const obs::Span files_span{"ingest.edp_files"};
    profiling::EdpReadOptions read_options;
    read_options.mode = options.mode;

    DiagnosticLog parse_log;
    std::size_t dropped_files = 0;
    // Group runs by their full parameter map; map ordering makes the
    // configuration order deterministic regardless of path order.
    std::map<std::map<std::string, double>,
             std::vector<profiling::ProfiledRun>>
        groups;
    for (const auto& path : paths) {
        profiling::EdpReadResult parsed;
        try {
            const obs::Span read_span{"ingest.read_edp"};
            parsed = profiling::read_edp_file(path, read_options);
        } catch (const Error& e) {
            // Strict mode rethrows: fail fast is the contract there.
            if (options.mode == profiling::ParseMode::Strict) {
                throw;
            }
            parse_log.add(Severity::Error, path + ": " + e.what());
            ++dropped_files;
            continue;
        }
        for (const auto& d : parsed.diagnostics.entries()) {
            Diagnostic scoped = d;
            scoped.reason = path + ": " + d.reason;
            parse_log.add(std::move(scoped));
        }
        if (!parsed.ok()) {
            parse_log.add(Severity::Error,
                          path + ": file quarantined (" +
                              parsed.diagnostics.summary() + ")");
            ++dropped_files;
            continue;
        }
        if (parsed.run.params.find(options.primary_parameter) ==
            parsed.run.params.end()) {
            parse_log.add(Severity::Error,
                          path + ": run lacks primary parameter '" +
                              options.primary_parameter + "'");
            ++dropped_files;
            continue;
        }
        groups[parsed.run.params].push_back(std::move(parsed.run));
    }

    std::vector<std::vector<profiling::ProfiledRun>> configs;
    configs.reserve(groups.size());
    for (auto& [params, runs] : groups) {
        // Repetition order on disk is arbitrary; sort for reproducibility.
        std::stable_sort(runs.begin(), runs.end(),
                         [](const profiling::ProfiledRun& a,
                            const profiling::ProfiledRun& b) {
                             return a.repetition < b.repetition;
                         });
        configs.push_back(std::move(runs));
    }
    std::stable_sort(configs.begin(), configs.end(),
                     [&](const auto& a, const auto& b) {
                         return a.front().params.at(options.primary_parameter) <
                                b.front().params.at(options.primary_parameter);
                     });

    IngestResult result = ingest_runs(configs, options);
    result.runs_total += dropped_files;
    // Parse diagnostics come first: they precede validation logically.
    DiagnosticLog merged(DiagnosticLog::kDefaultCapacity);
    merged.merge(parse_log);
    merged.merge(result.diagnostics);
    result.diagnostics = std::move(merged);
    return result;
}

}  // namespace extradeep
