#include "extradeep/ingest.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "aggregation/stream.hpp"
#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "profiling/edp_stream.hpp"

namespace extradeep {

namespace {

std::atomic<std::uint64_t> g_runs_materialized{0};
std::atomic<std::uint64_t> g_files_streamed{0};

/// Everything the streaming ingest retains per run: identity, per-run
/// validation verdict, and the fully reduced per-kernel aggregate. The
/// run's events/marks are gone by the time this exists.
struct StreamedRun {
    std::map<std::string, double> params;
    int repetition = 0;
    std::size_t n_ranks = 0;
    aggregation::RunVerdict verdict;
    aggregation::RunAggregate aggregate;
};

/// Outcome of digesting one EDP file record-at-a-time.
struct StreamedFile {
    DiagnosticLog parse_log;  ///< unscoped reader diagnostics
    bool ok = false;          ///< no Error-severity parse diagnostic
    StreamedRun run;          ///< valid only when ok
};

/// One pass over an EDP file: folds records into (a) a marks-only skeleton
/// run for validation and (b) per-rank reduced aggregates. Buffers at most
/// one rank block (the current rank's marks + events) at a time — event
/// assignment to step windows sorts the whole rank's events by start time,
/// so a rank must be complete before it can be reduced bit-identically to
/// the materialising path. Throws like read_edp_file in strict mode (and
/// on unopenable files in any mode).
StreamedFile stream_digest_file(const std::string& path,
                                const IngestOptions& options) {
    const obs::Span span{"ingest.stream_edp"};
    std::ifstream is(path);
    if (!is) {
        throw Error("EDP: cannot open for reading: " + path);
    }
    profiling::EdpReadOptions read_options;
    read_options.mode = options.mode;
    profiling::EdpStreamReader reader(is, read_options);

    profiling::ProfiledRun skeleton;  // params/rep/wall + marks-only ranks
    trace::RankTrace current;         // in-flight rank block (marks + events)
    bool have_rank = false;
    aggregation::RunAggregator run_agg;
    // A rank whose marks do not segment makes the whole aggregate unusable;
    // validation is guaranteed to drop such a run (validate_steps runs
    // segment_steps on the same marks), so the aggregate is never consumed.
    bool aggregate_ok = true;

    const auto finalize_rank = [&] {
        if (!have_rank) return;
        if (aggregate_ok) {
            try {
                run_agg.add_rank(current,
                                 options.aggregation.discard_warmup_epochs);
            } catch (const ParseError&) {
                aggregate_ok = false;
            }
        }
        trace::RankTrace marks_only;
        marks_only.rank = current.rank;
        marks_only.marks = std::move(current.marks);
        skeleton.ranks.push_back(std::move(marks_only));
        current = trace::RankTrace{};
        have_rank = false;
    };

    profiling::EdpRecord rec;
    while (reader.next(rec)) {
        switch (rec.kind) {
            case profiling::EdpRecord::Kind::Param:
                skeleton.params[rec.param_name] = rec.number;
                break;
            case profiling::EdpRecord::Kind::Repetition:
                skeleton.repetition = rec.index;
                break;
            case profiling::EdpRecord::Kind::WallTime:
                skeleton.profiling_wall_time = rec.number;
                break;
            case profiling::EdpRecord::Kind::RankBegin:
                finalize_rank();
                current.rank = rec.index;
                have_rank = true;
                break;
            case profiling::EdpRecord::Kind::Mark:
                current.marks.push_back(rec.mark);
                break;
            case profiling::EdpRecord::Kind::Event:
                current.events.push_back(rec.event);
                break;
            case profiling::EdpRecord::Kind::End:
                break;
        }
    }
    finalize_rank();

    StreamedFile out;
    out.parse_log = reader.take_diagnostics();
    out.ok = !out.parse_log.has_errors();
    if (!out.ok) {
        return out;  // quarantined by the caller; aggregate unused
    }
    // Validation sees exactly what the materialising path's validate_run
    // sees: the parser guarantees event metric sanity, and segment_steps /
    // step monotonicity depend only on the marks, so a marks-only skeleton
    // yields the identical verdict and diagnostics.
    out.run.verdict = aggregation::validate_run(skeleton,
                                                options.validation.run);
    out.run.params = std::move(skeleton.params);
    out.run.repetition = skeleton.repetition;
    out.run.n_ranks = skeleton.ranks.size();
    if (out.run.verdict.keep && aggregate_ok) {
        out.run.aggregate = run_agg.finish();
    }
    return out;
}

/// Groups runs by their full parameter map and orders configurations by the
/// primary parameter — identical logic for ProfiledRun and StreamedRun, so
/// both ingest paths assemble configurations in the same order.
template <typename Run>
std::vector<std::vector<Run>> group_by_configuration(
    std::map<std::map<std::string, double>, std::vector<Run>>&& groups,
    const std::string& primary_parameter) {
    std::vector<std::vector<Run>> configs;
    configs.reserve(groups.size());
    for (auto& [params, runs] : groups) {
        // Repetition order on disk is arbitrary; sort for reproducibility.
        std::stable_sort(runs.begin(), runs.end(),
                         [](const Run& a, const Run& b) {
                             return a.repetition < b.repetition;
                         });
        configs.push_back(std::move(runs));
    }
    std::stable_sort(configs.begin(), configs.end(),
                     [&](const auto& a, const auto& b) {
                         return a.front().params.at(primary_parameter) <
                                b.front().params.at(primary_parameter);
                     });
    return configs;
}

void record_ingest_metrics(const IngestResult& result) {
    if (obs::trace_enabled()) {
        obs::MetricsRegistry& metrics = obs::global_metrics();
        metrics.counter("extradeep_ingest_runs_total")
            .increment(result.runs_total);
        metrics.counter("extradeep_ingest_runs_dropped_total")
            .increment(result.runs_total - result.runs_kept);
        metrics.counter("extradeep_ingest_configs_total")
            .increment(result.configs_total);
    }
}

/// Cross-run validation + per-configuration aggregation over streamed run
/// summaries: the streaming twin of ingest_runs, sharing
/// validate_experiment_facts and the ConfigAggregator core so diagnostics
/// and aggregates are bit-identical.
IngestResult ingest_streamed_runs(std::span<std::vector<StreamedRun>> configs,
                                  const IngestOptions& options) {
    const obs::Span ingest_span{"ingest.runs"};
    IngestResult result;
    result.data = aggregation::ExperimentData(options.primary_parameter);
    result.configs_total = configs.size();
    for (const auto& runs : configs) {
        result.runs_total += runs.size();
    }

    std::vector<std::vector<aggregation::ValidatedRunFacts>> facts(
        configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        facts[c].reserve(configs[c].size());
        for (const auto& run : configs[c]) {
            aggregation::ValidatedRunFacts f;
            f.params = run.params;
            f.n_ranks = run.n_ranks;
            f.repetition = run.repetition;
            f.verdict = run.verdict;
            facts[c].push_back(std::move(f));
        }
    }
    aggregation::ExperimentVerdict verdict = [&] {
        const obs::Span validate_span{"ingest.validate_experiment"};
        return aggregation::validate_experiment_facts(facts,
                                                      options.validation);
    }();
    result.diagnostics.merge(verdict.diagnostics);

    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!verdict.keep_config[c]) {
            continue;
        }
        std::size_t kept = 0;
        try {
            const obs::Span aggregate_span{"ingest.aggregate_config"};
            aggregation::ConfigAggregator agg;
            for (std::size_t r = 0; r < configs[c].size(); ++r) {
                if (!verdict.keep_run[c][r]) continue;
                agg.add_run(configs[c][r].params,
                            std::move(configs[c][r].aggregate));
                ++kept;
            }
            result.data.add(agg.finish());
        } catch (const Error& e) {
            result.diagnostics.add(
                Severity::Error,
                "configuration " + std::to_string(c) + " dropped: " + e.what());
            continue;
        }
        result.configs_kept += 1;
        result.runs_kept += kept;
    }
    record_ingest_metrics(result);
    return result;
}

/// Runs `work(i)` for every i in [0, count) on `num_threads` threads via
/// the ThreadPool submit lane (request-level dispatch, no barrier until the
/// final join). `work` must not throw — wrap and capture exceptions.
void for_each_submitted(std::size_t count, int num_threads,
                        const std::function<void(std::size_t)>& work) {
    const int threads =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(resolve_num_threads(num_threads)),
            count));
    if (threads < 2) {
        for (std::size_t i = 0; i < count; ++i) {
            work(i);
        }
        return;
    }
    // +1: submit() runs tasks on background workers only; the caller just
    // waits, so `threads` digests run concurrently.
    ThreadPool pool(threads + 1);
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = count;
    for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&, i] {
            work(i);
            {
                const std::lock_guard<std::mutex> lock(mutex);
                --remaining;
            }
            done.notify_one();
        });
    }
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return remaining == 0; });
}

IngestResult ingest_edp_files_streaming(std::span<const std::string> paths,
                                        const IngestOptions& options) {
    struct Slot {
        StreamedFile file;
        std::exception_ptr error;
    };
    std::vector<Slot> slots(paths.size());
    for_each_submitted(paths.size(), options.num_threads, [&](std::size_t i) {
        try {
            slots[i].file = stream_digest_file(paths[i], options);
        } catch (...) {
            slots[i].error = std::current_exception();
        }
    });

    // Merge in path order: diagnostics, drop decisions, and (in strict
    // mode) the first failure are deterministic regardless of num_threads.
    DiagnosticLog parse_log;
    std::size_t dropped_files = 0;
    std::map<std::map<std::string, double>, std::vector<StreamedRun>> groups;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        const std::string& path = paths[i];
        Slot& slot = slots[i];
        if (slot.error) {
            if (options.mode == profiling::ParseMode::Strict) {
                std::rethrow_exception(slot.error);
            }
            try {
                std::rethrow_exception(slot.error);
            } catch (const Error& e) {
                parse_log.add(Severity::Error, path + ": " + e.what());
                ++dropped_files;
                continue;
            }
        }
        g_files_streamed.fetch_add(1, std::memory_order_relaxed);
        for (const auto& d : slot.file.parse_log.entries()) {
            Diagnostic scoped = d;
            scoped.reason = path + ": " + d.reason;
            parse_log.add(std::move(scoped));
        }
        if (!slot.file.ok) {
            parse_log.add(Severity::Error,
                          path + ": file quarantined (" +
                              slot.file.parse_log.summary() + ")");
            ++dropped_files;
            continue;
        }
        if (slot.file.run.params.find(options.primary_parameter) ==
            slot.file.run.params.end()) {
            parse_log.add(Severity::Error,
                          path + ": run lacks primary parameter '" +
                              options.primary_parameter + "'");
            ++dropped_files;
            continue;
        }
        groups[slot.file.run.params].push_back(std::move(slot.file.run));
    }

    std::vector<std::vector<StreamedRun>> configs =
        group_by_configuration(std::move(groups), options.primary_parameter);

    IngestResult result = ingest_streamed_runs(configs, options);
    result.runs_total += dropped_files;
    // Parse diagnostics come first: they precede validation logically.
    DiagnosticLog merged(DiagnosticLog::kDefaultCapacity);
    merged.merge(parse_log);
    merged.merge(result.diagnostics);
    result.diagnostics = std::move(merged);
    return result;
}

}  // namespace

std::string IngestResult::summary() const {
    std::ostringstream os;
    os << "kept " << runs_kept << "/" << runs_total << " runs, "
       << configs_kept << "/" << configs_total << " configurations";
    if (!diagnostics.empty()) {
        os << "; " << diagnostics.summary();
    }
    return os.str();
}

IngestCounters ingest_counters() {
    IngestCounters out;
    out.runs_materialized = g_runs_materialized.load(std::memory_order_relaxed);
    out.files_streamed = g_files_streamed.load(std::memory_order_relaxed);
    return out;
}

IngestResult ingest_runs(
    std::span<const std::vector<profiling::ProfiledRun>> configs,
    const IngestOptions& options) {
    if (options.streaming) {
        // Reduce each run up front (validate_run + per-rank fold) and share
        // the streamed assembly path: no kept-run copies are made.
        std::vector<std::vector<StreamedRun>> summaries(configs.size());
        for (std::size_t c = 0; c < configs.size(); ++c) {
            summaries[c].reserve(configs[c].size());
            for (const auto& run : configs[c]) {
                StreamedRun s;
                s.params = run.params;
                s.repetition = run.repetition;
                s.n_ranks = run.ranks.size();
                s.verdict =
                    aggregation::validate_run(run, options.validation.run);
                if (s.verdict.keep) {
                    try {
                        aggregation::RunAggregator run_agg;
                        for (const auto& rank_trace : run.ranks) {
                            run_agg.add_rank(
                                rank_trace,
                                options.aggregation.discard_warmup_epochs);
                        }
                        s.aggregate = run_agg.finish();
                    } catch (const ParseError&) {
                        // validate_run keeps only runs whose marks segment,
                        // so this is unreachable; the empty aggregate would
                        // surface as a dropped configuration.
                    }
                }
                summaries[c].push_back(std::move(s));
            }
        }
        return ingest_streamed_runs(summaries, options);
    }

    const obs::Span ingest_span{"ingest.runs"};
    IngestResult result;
    result.data = aggregation::ExperimentData(options.primary_parameter);
    result.configs_total = configs.size();
    for (const auto& runs : configs) {
        result.runs_total += runs.size();
    }

    aggregation::ExperimentVerdict verdict = [&] {
        const obs::Span validate_span{"ingest.validate_experiment"};
        return aggregation::validate_experiment(configs, options.validation);
    }();
    result.diagnostics.merge(verdict.diagnostics);

    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!verdict.keep_config[c]) {
            continue;
        }
        std::vector<profiling::ProfiledRun> kept;
        kept.reserve(configs[c].size());
        for (std::size_t r = 0; r < configs[c].size(); ++r) {
            if (verdict.keep_run[c][r]) {
                kept.push_back(configs[c][r]);
            }
        }
        // Validation guarantees aggregate_runs preconditions, but keep the
        // drop-not-throw contract even if an invariant slips through.
        try {
            const obs::Span aggregate_span{"ingest.aggregate_config"};
            result.data.add(
                aggregation::aggregate_runs(kept, options.aggregation));
        } catch (const Error& e) {
            result.diagnostics.add(
                Severity::Error,
                "configuration " + std::to_string(c) + " dropped: " + e.what());
            continue;
        }
        result.configs_kept += 1;
        result.runs_kept += kept.size();
    }
    record_ingest_metrics(result);
    return result;
}

IngestResult ingest_edp_files(std::span<const std::string> paths,
                              const IngestOptions& options) {
    const obs::Span files_span{"ingest.edp_files"};
    if (options.streaming) {
        return ingest_edp_files_streaming(paths, options);
    }
    profiling::EdpReadOptions read_options;
    read_options.mode = options.mode;

    struct Slot {
        profiling::EdpReadResult parsed;
        std::exception_ptr error;
    };
    std::vector<Slot> slots(paths.size());
    for_each_submitted(paths.size(), options.num_threads, [&](std::size_t i) {
        try {
            const obs::Span read_span{"ingest.read_edp"};
            slots[i].parsed = profiling::read_edp_file(paths[i], read_options);
        } catch (...) {
            slots[i].error = std::current_exception();
        }
    });

    DiagnosticLog parse_log;
    std::size_t dropped_files = 0;
    // Group runs by their full parameter map; map ordering makes the
    // configuration order deterministic regardless of path order.
    std::map<std::map<std::string, double>,
             std::vector<profiling::ProfiledRun>>
        groups;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        const std::string& path = paths[i];
        Slot& slot = slots[i];
        if (slot.error) {
            // Strict mode rethrows: fail fast is the contract there (the
            // lowest path index wins, independent of num_threads).
            if (options.mode == profiling::ParseMode::Strict) {
                std::rethrow_exception(slot.error);
            }
            try {
                std::rethrow_exception(slot.error);
            } catch (const Error& e) {
                parse_log.add(Severity::Error, path + ": " + e.what());
                ++dropped_files;
                continue;
            }
        }
        g_runs_materialized.fetch_add(1, std::memory_order_relaxed);
        profiling::EdpReadResult& parsed = slot.parsed;
        for (const auto& d : parsed.diagnostics.entries()) {
            Diagnostic scoped = d;
            scoped.reason = path + ": " + d.reason;
            parse_log.add(std::move(scoped));
        }
        if (!parsed.ok()) {
            parse_log.add(Severity::Error,
                          path + ": file quarantined (" +
                              parsed.diagnostics.summary() + ")");
            ++dropped_files;
            continue;
        }
        if (parsed.run.params.find(options.primary_parameter) ==
            parsed.run.params.end()) {
            parse_log.add(Severity::Error,
                          path + ": run lacks primary parameter '" +
                              options.primary_parameter + "'");
            ++dropped_files;
            continue;
        }
        groups[parsed.run.params].push_back(std::move(parsed.run));
    }

    std::vector<std::vector<profiling::ProfiledRun>> configs =
        group_by_configuration(std::move(groups), options.primary_parameter);

    IngestResult result = ingest_runs(configs, options);
    result.runs_total += dropped_files;
    // Parse diagnostics come first: they precede validation logically.
    DiagnosticLog merged(DiagnosticLog::kDefaultCapacity);
    merged.merge(parse_log);
    merged.merge(result.diagnostics);
    result.diagnostics = std::move(merged);
    return result;
}

}  // namespace extradeep
