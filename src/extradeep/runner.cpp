#include "extradeep/runner.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "obs/trace.hpp"

namespace extradeep {

namespace {

constexpr std::uint64_t kGroundTruthSeedSalt = 0x47525554ULL;  // "GRUT"

std::map<std::string, double> params_for(int ranks) {
    return {{"x1", static_cast<double>(ranks)}};
}

}  // namespace

std::string ExperimentSpec::describe() const {
    std::ostringstream os;
    os << dataset << " on " << system.name << ", "
       << parallel::strategy_name(strategy) << ", "
       << parallel::scaling_name(scaling) << ", B=" << batch_per_worker
       << ", reps=" << repetitions;
    return os.str();
}

ExperimentRunner::ExperimentRunner(ExperimentSpec spec) : spec_(std::move(spec)) {
    if (spec_.modeling_ranks.empty()) {
        throw InvalidArgumentError("ExperimentRunner: no modeling points");
    }
    if (spec_.repetitions < 1) {
        throw InvalidArgumentError("ExperimentRunner: repetitions must be >= 1");
    }
}

sim::Workload ExperimentRunner::workload_for(int ranks) const {
    parallel::ParallelConfig cfg;
    switch (spec_.strategy) {
        case parallel::StrategyKind::Data:
            cfg = parallel::ParallelConfig::data(ranks);
            break;
        case parallel::StrategyKind::Tensor:
            cfg = parallel::ParallelConfig::tensor(ranks,
                                                   spec_.model_parallel_degree);
            break;
        case parallel::StrategyKind::Pipeline:
            cfg = parallel::ParallelConfig::pipeline(
                ranks, spec_.model_parallel_degree);
            break;
    }
    return sim::Workload::make(spec_.dataset, spec_.system, cfg, spec_.scaling,
                               spec_.batch_per_worker);
}

StepMathFn ExperimentRunner::step_math_fn() const {
    // Delegates to the persistence hook so that a model exported to .edpm
    // and reloaded reconstructs the exact same step-count function.
    return make_step_math_fn(spec_.dataset, spec_.strategy,
                             spec_.model_parallel_degree, spec_.scaling,
                             spec_.batch_per_worker);
}

modeling::ModelGenerator ExperimentRunner::default_generator() const {
    modeling::FitOptions options;
    options.num_threads = spec_.fit_threads;
    return modeling::ModelGenerator(options);
}

ExperimentResult ExperimentRunner::run() const {
    return run(default_generator());
}

ExperimentResult ExperimentRunner::run(
    const modeling::ModelGenerator& generator) const {
    const obs::Span run_span{"runner.experiment"};
    ExperimentResult result;
    const profiling::Profiler profiler(spec_.sampling);
    aggregation::AggregationOptions agg_opts;
    agg_opts.discard_warmup_epochs = spec_.sampling.discard_warmup_epochs;

    for (const int ranks : spec_.modeling_ranks) {
        const sim::TrainingSimulator simulator(workload_for(ranks));
        std::vector<profiling::ProfiledRun> runs;
        runs.reserve(spec_.repetitions);
        {
            const obs::Span profile_span{"runner.profile_point"};
            for (int rep = 0; rep < spec_.repetitions; ++rep) {
                runs.push_back(profiler.profile(simulator, params_for(ranks),
                                                rep, spec_.seed));
            }
        }
        const obs::Span aggregate_span{"runner.aggregate_point"};
        result.data.add(aggregation::aggregate_runs(runs, agg_opts));
        result.step_math[ranks] = simulator.step_math();
    }
    for (const int ranks : spec_.evaluation_ranks) {
        result.step_math[ranks] = workload_for(ranks).step_math();
    }

    // Per-step metric series at the modeling points, then the application
    // models: PMNF per-step fits composed with the analytical step counts
    // (Eqs. 2-6). The derived per-epoch values are also recorded, both for
    // reporting model accuracy the way the paper defines it and for
    // downstream cost models.
    result.step_math_fn = step_math_fn();
    std::array<std::vector<double>, trace::kPhaseCount> phase_train;
    std::array<std::vector<double>, trace::kPhaseCount> phase_val;
    std::vector<double> total_train;
    std::vector<double> total_val;
    for (const auto& config : result.data.configs()) {
        const int ranks = static_cast<int>(config.params.at("x1"));
        const parallel::StepMath& sm = result.step_math.at(ranks);
        result.modeling_xs.push_back(static_cast<double>(ranks));
        result.epoch_time_values.push_back(aggregation::derived_epoch_total(
            config, sm, aggregation::Metric::Time));
        double train_sum = 0.0;
        double val_sum = 0.0;
        for (int p = 0; p < trace::kPhaseCount; ++p) {
            const auto phase = static_cast<trace::Phase>(p);
            const double t =
                config.phase_metric(phase, aggregation::Metric::Time, true);
            const double v =
                config.phase_metric(phase, aggregation::Metric::Time, false);
            phase_train[p].push_back(t);
            phase_val[p].push_back(v);
            train_sum += t;
            val_sum += v;
        }
        total_train.push_back(train_sum);
        total_val.push_back(val_sum);
    }
    const obs::Span fit_span{"runner.fit_models"};
    result.epoch_time =
        EpochModel(generator.fit(result.modeling_xs, total_train),
                   generator.fit(result.modeling_xs, total_val),
                   result.step_math_fn);
    for (int p = 0; p < trace::kPhaseCount; ++p) {
        result.phase_time[p] =
            EpochModel(generator.fit(result.modeling_xs, phase_train[p]),
                       generator.fit(result.modeling_xs, phase_val[p]),
                       result.step_math_fn);
    }
    return result;
}

std::vector<double> ExperimentRunner::measured_epoch_times_all_reps(
    int ranks) const {
    const sim::TrainingSimulator simulator(workload_for(ranks));
    std::vector<double> times;
    times.reserve(spec_.repetitions);
    for (int rep = 0; rep < spec_.repetitions; ++rep) {
        const std::uint64_t seed = profiling::run_seed_for(
            params_for(ranks), rep, spec_.seed ^ kGroundTruthSeedSalt);
        times.push_back(simulator.measure_epoch_wall(seed));
    }
    return times;
}

double ExperimentRunner::measured_epoch_time(int ranks) const {
    return stats::median(measured_epoch_times_all_reps(ranks));
}

double ExperimentRunner::measured_phase_time(int ranks,
                                             trace::Phase phase) const {
    const sim::TrainingSimulator simulator(workload_for(ranks));
    std::vector<double> times;
    times.reserve(spec_.repetitions);
    for (int rep = 0; rep < spec_.repetitions; ++rep) {
        const std::uint64_t seed = profiling::run_seed_for(
            params_for(ranks), rep, spec_.seed ^ kGroundTruthSeedSalt);
        times.push_back(simulator.measure_epoch_typical(seed)
                            .phase_time[static_cast<int>(phase)]);
    }
    return stats::median(times);
}

std::vector<sim::KernelTotals> ExperimentRunner::measured_kernel_totals(
    int ranks) const {
    const sim::TrainingSimulator simulator(workload_for(ranks));
    std::vector<sim::EpochMeasurement> reps;
    reps.reserve(spec_.repetitions);
    for (int rep = 0; rep < spec_.repetitions; ++rep) {
        const std::uint64_t seed = profiling::run_seed_for(
            params_for(ranks), rep, spec_.seed ^ kGroundTruthSeedSalt);
        reps.push_back(simulator.measure_epoch_typical(seed));
    }
    // The kernel list and order come from the deterministic schedule, so the
    // per-index median across repetitions is well defined.
    std::vector<sim::KernelTotals> out = reps.front().kernels;
    std::vector<double> column;
    for (std::size_t k = 0; k < out.size(); ++k) {
        column.clear();
        for (const auto& r : reps) {
            column.push_back(r.kernels[k].time);
        }
        out[k].time = stats::median(column);
        column.clear();
        for (const auto& r : reps) {
            column.push_back(r.kernels[k].bytes);
        }
        out[k].bytes = stats::median(column);
    }
    return out;
}

}  // namespace extradeep
