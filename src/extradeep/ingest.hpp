#pragma once

#include <span>
#include <string>
#include <vector>

#include "aggregation/aggregate.hpp"
#include "aggregation/experiment.hpp"
#include "aggregation/validate.hpp"
#include "profiling/edp_io.hpp"

namespace extradeep {

/// Robust ingestion: EDP files (or in-memory runs) -> validated, aggregated
/// ExperimentData, degrading gracefully on dirty input.
///
/// This is the entry point for profiles that did not come from this
/// process's own simulator - e.g. EDP exports collected on another machine,
/// where truncated files, missing ranks, and corrupt records are routine.
/// The pipeline is: tolerant parse (collect diagnostics, skip corrupt
/// records) -> validate_run / validate_experiment (keep/drop verdicts) ->
/// aggregate only the surviving repetitions -> ExperimentData over the
/// surviving configurations. The paper's "kernel present in >= 5
/// configurations" filter (ExperimentData::modelable_kernels) therefore
/// operates on surviving data only, exactly as required.

struct IngestOptions {
    /// Parse mode for EDP input. Tolerant (the default) skips corrupt
    /// records with diagnostics; Strict makes ingest_edp_files throw on the
    /// first malformed file instead.
    profiling::ParseMode mode = profiling::ParseMode::Tolerant;
    aggregation::ExperimentValidationOptions validation;
    aggregation::AggregationOptions aggregation;
    /// Primary execution parameter configurations are keyed/ordered by.
    std::string primary_parameter = "x1";
};

struct IngestResult {
    aggregation::ExperimentData data;
    DiagnosticLog diagnostics;
    std::size_t runs_total = 0;
    std::size_t runs_kept = 0;
    std::size_t configs_total = 0;
    std::size_t configs_kept = 0;

    /// True if at least one configuration survived; modeling additionally
    /// needs >= aggregation::kMinModelingPoints surviving configurations.
    bool ok() const { return configs_kept > 0; }
    bool modelable() const {
        return configs_kept >=
               static_cast<std::size_t>(aggregation::kMinModelingPoints);
    }
    /// "kept 18/20 runs, 4/5 configurations; 7 warnings"
    std::string summary() const;
};

/// Ingests pre-grouped runs: one inner vector per measurement point (the
/// repetitions of that point). Repetitions and configurations failing
/// validation are dropped with diagnostics; configurations whose
/// aggregation or registration fails (e.g. duplicate primary-parameter
/// value, missing primary parameter) are likewise dropped, never thrown.
IngestResult ingest_runs(
    std::span<const std::vector<profiling::ProfiledRun>> configs,
    const IngestOptions& options = {});

/// Parses every file (tolerantly by default), groups the runs by their full
/// parameter map into configurations ordered by the primary parameter, and
/// delegates to ingest_runs. Unreadable or structurally broken files are
/// dropped with Error diagnostics (in Tolerant mode; Strict mode throws).
IngestResult ingest_edp_files(std::span<const std::string> paths,
                              const IngestOptions& options = {});

}  // namespace extradeep
