#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "aggregation/aggregate.hpp"
#include "aggregation/experiment.hpp"
#include "aggregation/validate.hpp"
#include "profiling/edp_io.hpp"

namespace extradeep {

/// Robust ingestion: EDP files (or in-memory runs) -> validated, aggregated
/// ExperimentData, degrading gracefully on dirty input.
///
/// This is the entry point for profiles that did not come from this
/// process's own simulator - e.g. EDP exports collected on another machine,
/// where truncated files, missing ranks, and corrupt records are routine.
/// The pipeline is: tolerant parse (collect diagnostics, skip corrupt
/// records) -> validate_run / validate_experiment (keep/drop verdicts) ->
/// aggregate only the surviving repetitions -> ExperimentData over the
/// surviving configurations. The paper's "kernel present in >= 5
/// configurations" filter (ExperimentData::modelable_kernels) therefore
/// operates on surviving data only, exactly as required.

struct IngestOptions {
    /// Parse mode for EDP input. Tolerant (the default) skips corrupt
    /// records with diagnostics; Strict makes ingest_edp_files throw on the
    /// first malformed file instead.
    profiling::ParseMode mode = profiling::ParseMode::Tolerant;
    aggregation::ExperimentValidationOptions validation;
    aggregation::AggregationOptions aggregation;
    /// Primary execution parameter configurations are keyed/ordered by.
    std::string primary_parameter = "x1";
    /// Out-of-core mode. ingest_edp_files folds each file's records through
    /// EdpStreamReader + the incremental aggregation cores instead of
    /// materialising ProfiledRuns, so peak memory is bounded by the largest
    /// single rank block rather than the input size (DESIGN.md §13).
    /// ingest_runs skips its per-configuration kept-run copies. Results —
    /// aggregates, diagnostics, counts — are bit-identical to the
    /// materialising path (asserted by tests/test_ingest_stream.cpp).
    bool streaming = false;
    /// Threads for the per-file stage of ingest_edp_files (parse/digest is
    /// embarrassingly parallel across files; grouping and aggregation stay
    /// sequential and deterministic). 1 = sequential; 0 or negative = use
    /// the hardware concurrency. In streaming mode, peak memory scales with
    /// the number of files in flight, i.e. with this value.
    int num_threads = 1;
};

struct IngestResult {
    aggregation::ExperimentData data;
    DiagnosticLog diagnostics;
    std::size_t runs_total = 0;
    std::size_t runs_kept = 0;
    std::size_t configs_total = 0;
    std::size_t configs_kept = 0;

    /// True if at least one configuration survived; modeling additionally
    /// needs >= aggregation::kMinModelingPoints surviving configurations.
    bool ok() const { return configs_kept > 0; }
    bool modelable() const {
        return configs_kept >=
               static_cast<std::size_t>(aggregation::kMinModelingPoints);
    }
    /// "kept 18/20 runs, 4/5 configurations; 7 warnings"
    std::string summary() const;
};

/// Ingests pre-grouped runs: one inner vector per measurement point (the
/// repetitions of that point). Repetitions and configurations failing
/// validation are dropped with diagnostics; configurations whose
/// aggregation or registration fails (e.g. duplicate primary-parameter
/// value, missing primary parameter) are likewise dropped, never thrown.
IngestResult ingest_runs(
    std::span<const std::vector<profiling::ProfiledRun>> configs,
    const IngestOptions& options = {});

/// Parses every file (tolerantly by default), groups the runs by their full
/// parameter map into configurations ordered by the primary parameter, and
/// delegates to ingest_runs. Unreadable or structurally broken files are
/// dropped with Error diagnostics (in Tolerant mode; Strict mode throws —
/// with num_threads > 1, the exception of the lowest path index, keeping
/// error reporting deterministic across thread counts).
IngestResult ingest_edp_files(std::span<const std::string> paths,
                              const IngestOptions& options = {});

/// Process-wide monotonic instrumentation counters for the two file-ingest
/// paths, so tests can prove which path ran (the memory-ceiling regression
/// test asserts the materialising path was *not* taken). Snapshot before
/// and after an ingest and compare deltas.
struct IngestCounters {
    /// Files fully parsed into an in-memory ProfiledRun by the
    /// materialising ingest_edp_files path.
    std::uint64_t runs_materialized = 0;
    /// Files digested record-at-a-time by the streaming path.
    std::uint64_t files_streamed = 0;
};
IngestCounters ingest_counters();

}  // namespace extradeep
