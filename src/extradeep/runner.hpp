#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "aggregation/experiment.hpp"
#include "extradeep/models.hpp"
#include "modeling/fitter.hpp"
#include "profiling/profiler.hpp"
#include "sim/simulator.hpp"

namespace extradeep {

/// Full description of one Extra-Deep performance experiment, matching the
/// paper's evaluation methodology (Sec. 4.1): a benchmark application, a
/// system, a parallel strategy and scaling mode, the measurement points used
/// for modeling (P(x1)) and for evaluating predictive power (P+), and the
/// number of measurement repetitions.
struct ExperimentSpec {
    std::string dataset = "CIFAR-10";
    hw::SystemSpec system = hw::SystemSpec::deep();
    parallel::StrategyKind strategy = parallel::StrategyKind::Data;
    parallel::ScalingMode scaling = parallel::ScalingMode::Weak;
    std::int64_t batch_per_worker = 256;
    int model_parallel_degree = 4;  ///< M for tensor/pipeline strategies
    std::vector<int> modeling_ranks = {2, 4, 6, 8, 10};
    std::vector<int> evaluation_ranks = {12, 16, 24, 32, 40, 48, 56, 64};
    int repetitions = 5;
    profiling::SamplingStrategy sampling = profiling::SamplingStrategy::efficient();
    std::uint64_t seed = 1;
    /// Threads for the model-generation stage (hypothesis search and the
    /// per-kernel fit loop). 1 = serial, 0 = hardware concurrency. Results
    /// are bit-identical at any thread count.
    int fit_threads = 1;

    std::string describe() const;
};

/// Result of running one experiment's modeling pipeline: the aggregated
/// measurement points plus the application-level models (the Eq. 6-10
/// derived metrics: PMNF per-step models composed with the analytical step
/// counts, see EpochModel).
struct ExperimentResult {
    aggregation::ExperimentData data{"x1"};
    std::vector<double> modeling_xs;
    /// Derived per-epoch training time at the modeling points (Eq. 6).
    std::vector<double> epoch_time_values;
    EpochModel epoch_time;  ///< T_epoch(x1)
    /// Per-phase time models, indexed by trace::Phase.
    std::array<EpochModel, trace::kPhaseCount> phase_time;
    /// n_t/n_v for any rank count of this experiment (Eqs. 2-3).
    StepMathFn step_math_fn;
    /// StepMath precomputed for the modeling/evaluation points.
    std::map<int, parallel::StepMath> step_math;
};

/// Drives one experiment end to end: builds the simulator for each
/// configuration, profiles it with the configured sampling strategy,
/// aggregates the repetitions (Fig. 2), derives per-epoch metrics, and fits
/// the application models. Also provides the independent ground-truth
/// measurements the evaluation section compares model predictions against.
class ExperimentRunner {
public:
    explicit ExperimentRunner(ExperimentSpec spec);

    const ExperimentSpec& spec() const { return spec_; }

    /// The workload of one configuration (throws if `ranks` is invalid for
    /// the strategy, e.g. not divisible by M for tensor parallelism).
    sim::Workload workload_for(int ranks) const;

    /// n_t/n_v for any rank count of this experiment (Eqs. 2-3), computed
    /// from the dataset and strategy alone (no simulator required).
    StepMathFn step_math_fn() const;

    /// The default model generator. Per-step metrics are non-decreasing in
    /// the rank count under both scaling modes (the 1/x1 of strong scaling
    /// lives in the analytical n_t factor, Eq. 2), so the standard
    /// positive-exponent search space applies.
    modeling::ModelGenerator default_generator() const;

    /// Runs profiling + aggregation + application-model fitting over the
    /// modeling points, using default_generator().
    ExperimentResult run() const;
    /// Same, with an explicit generator (e.g. for search-space ablations).
    ExperimentResult run(const modeling::ModelGenerator& generator) const;

    /// Ground truth: median-over-repetitions measured training time per
    /// epoch at any rank count (independent runs, not the profiled ones).
    double measured_epoch_time(int ranks) const;

    /// Ground truth per-repetition epoch times (to report run-to-run
    /// variation as in Fig. 3's error bars).
    std::vector<double> measured_epoch_times_all_reps(int ranks) const;

    /// Ground truth per-phase epoch time (computation/communication/memory).
    double measured_phase_time(int ranks, trace::Phase phase) const;

    /// Ground-truth per-kernel epoch totals (median over repetitions), for
    /// kernel-model evaluation (Table 2).
    std::vector<sim::KernelTotals> measured_kernel_totals(int ranks) const;

private:
    ExperimentSpec spec_;
};

}  // namespace extradeep
