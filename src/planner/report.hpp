#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/report.hpp"
#include "eval/scorer.hpp"
#include "planner/planner.hpp"

namespace extradeep::planner {

/// The paper's profiling-cost reduction from step sampling (Sec. 4): the
/// reference the planner's configuration-level savings are reported next
/// to. The two attack different axes - the paper samples steps within a
/// run, the planner picks which runs to profile at all - so the numbers
/// compose rather than compete.
inline constexpr double kPaperSamplingReductionPct = 94.9;

/// One planner evaluation: the plan plus the truth-referenced accuracy of
/// the model it ended with (same metric definitions as the eval harness,
/// via eval::score_model).
struct PlanCaseReport {
    std::string case_name;
    double noise = 0.0;
    std::uint64_t seed = 1;
    PlanResult plan;
    eval::ModelAccuracy accuracy;
    std::string truth_str;
    std::string fitted_str;
};

/// Runs the adaptive planner against one oracle case: wraps the case in an
/// OracleMeasurementSource seeded exactly like the fixed-grid harness and
/// scores the resulting model against the known truth.
PlanCaseReport plan_case(const eval::OracleCase& oracle, double noise,
                         std::uint64_t seed, const PlanOptions& options);

/// Cartesian product over cases x noise levels.
std::vector<PlanCaseReport> plan_suite(const std::vector<eval::OracleCase>& cases,
                                       const std::vector<double>& noise_levels,
                                       std::uint64_t seed,
                                       const PlanOptions& options);

/// Flattens reports into gate records (the BENCH_plan.json schema shares
/// eval's record tuple). Per (case, noise): runs_used, baseline_runs,
/// cost_reduction_pct, rounds, exponent_recovery, smape_in_range,
/// extrap_error_{2x,4x,8x}. One trailing "suite" pseudo-case carries
/// mean/min cost reduction, the run totals, and the constant
/// paper_sampling_reduction_pct reference so the gate pins the comparison
/// into every benchmark snapshot.
std::vector<eval::MetricRecord> to_records(
    const std::vector<PlanCaseReport>& reports);

/// Human-readable results table plus the cost-reduction summary line.
std::string render_table(const std::vector<PlanCaseReport>& reports);

/// Serialises reports as a schema extradeep-plan/1 document: per-plan arms
/// (pull counts, means, elimination rounds) and rounds (budget trajectory,
/// per-round model deltas), plus the flat gate records. Deliberately free
/// of wall-clock fields - same seed and budget must render byte-identical
/// JSON at any thread count.
std::string plan_json(const std::vector<PlanCaseReport>& reports,
                      const std::string& git_rev);

/// Parses a plan thresholds document ({"thresholds": [...]}, eval dialect)
/// and checks the records against it on the shared common/gate core,
/// formatting violations in the established gate style.
eval::GateResult check_plan_gate(const std::vector<eval::MetricRecord>& records,
                                 const std::string& thresholds_json);
eval::GateResult check_plan_gate_file(
    const std::vector<eval::MetricRecord>& records, const std::string& path);

}  // namespace extradeep::planner
