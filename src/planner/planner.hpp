#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/measurement.hpp"
#include "modeling/fitter.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace extradeep::planner {

/// Tuning knobs of the adaptive experiment planner (DESIGN.md Sec. 15).
/// The planner treats candidate configurations as arms of a best-arm-style
/// racing problem: it repeatedly profiles the configuration whose
/// prediction is least certain and retires (eliminates) arms once the
/// fitted model's relative prediction-interval width at their point drops
/// below `target_rel_width`.
struct PlanOptions {
    /// Measurements taken per arm in the seed round. At least 1; the fit
    /// needs one value per configuration before any scoring can happen.
    int seed_pulls = 1;
    /// Hard per-arm cap, mirroring the fixed grid's repetition count; an
    /// arm reaching it is retired as "exhausted" (more repetitions than the
    /// grid would never be a saving).
    int max_pulls_per_arm = 5;
    /// Total pull budget in profiled runs; 0 derives the fixed-grid cost
    /// (num_configs * max_pulls_per_arm).
    int budget = 0;
    /// An arm is confidently settled when interval_half_width(point) /
    /// (sqrt(pulls) * |prediction|) falls to this value or below.
    double target_rel_width = 0.12;
    /// Arms with fewer than this many pulls face a stricter confidence bar
    /// (target_rel_width * untrusted_margin): a single measurement that
    /// happens to sit on the fitted curve must not retire its arm while the
    /// residual scatter says the data is noisy. Noise-adaptive by
    /// construction - on noise-free sources the interval collapses and
    /// even 1-pull arms clear the stricter bar immediately.
    int trusted_pulls = 3;
    double untrusted_margin = 0.02;
    /// Confidence level of the acquisition intervals.
    double confidence = 0.95;
    /// Threads for the hypothesis search (FitOptions::num_threads). The
    /// plan is bit-identical at any setting - the fitter's reductions are
    /// order-stable by construction.
    int num_threads = 1;
    /// Time source for the refit-latency histogram only; never serialised
    /// into the PlanResult, so plans stay byte-reproducible under real
    /// clocks. nullptr means the shared steady clock.
    const obs::Clock* clock = nullptr;
    /// Metrics sink for extradeep_plan_* instruments. nullptr publishes to
    /// the global registry when tracing is enabled (the fitter's pattern)
    /// and disables metrics otherwise.
    obs::MetricsRegistry* metrics = nullptr;
};

/// Per-arm outcome of a finished plan.
struct ArmState {
    std::vector<double> point;
    std::vector<double> values;  ///< pulled measurements, in pull order
    double mean = 0.0;           ///< running mean of `values`
    int pulls = 0;
    bool eliminated = false;
    int eliminated_round = -1;       ///< -1 = still active when the plan stopped
    std::string eliminated_reason;   ///< "confident" | "exhausted" | ""
    double last_rel_width = 0.0;     ///< relative width at the last refit
};

/// One refit round of the plan. Round 0 is the seed round (every arm pulled
/// seed_pulls times, arm_pulled == -1); each later round pulls exactly one
/// arm and refits.
struct PlanRound {
    int round = 0;
    int arm_pulled = -1;
    int pulls_this_round = 0;
    double budget_spent = 0.0;  ///< cumulative runs after this round
    std::string fitted;         ///< model rendered after the refit
    std::string growth;         ///< dominant growth, all parameters
    bool growth_changed = false;
    double max_rel_width = 0.0;  ///< over arms still active after elimination
    int eliminated_total = 0;    ///< cumulative arms retired
};

/// A finished plan: what was measured, in what order, what it cost, and the
/// model the surviving data supports. Serialised as schema extradeep-plan/1
/// by planner::plan_json.
struct PlanResult {
    double runs_used = 0.0;
    double baseline_runs = 0.0;       ///< fixed-grid cost of the same case
    double cost_reduction_pct = 0.0;  ///< 100 * (1 - runs_used / baseline)
    std::string stop_reason;          ///< "confidence" | "exhausted" | "budget"
    std::vector<ArmState> arms;
    std::vector<PlanRound> rounds;
    modeling::PerformanceModel model;
    std::vector<std::string> param_names;
};

/// Runs the adaptive plan against a measurement source. Deterministic: the
/// source must be, and everything else is - the refit dispatches on the
/// ThreadPool submit() lane but the caller blocks on its completion, and
/// the acquisition argmax breaks ties toward the lowest arm index. Throws
/// InvalidArgumentError when the source has fewer arms than the fitter's
/// min_points or the budget cannot cover the seed round.
PlanResult run_plan(eval::MeasurementSource& source,
                    const PlanOptions& options);

}  // namespace extradeep::planner
