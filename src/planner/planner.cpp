#include "planner/planner.hpp"

#include <cmath>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "obs/trace.hpp"

namespace extradeep::planner {

namespace {

/// Instruments of one run_plan invocation; null when metrics are disabled.
struct PlanInstruments {
    obs::Counter* arms_pulled = nullptr;
    obs::Counter* budget_spent = nullptr;
    obs::Histogram* refit_latency_us = nullptr;
};

PlanInstruments resolve_instruments(const PlanOptions& options) {
    obs::MetricsRegistry* registry = options.metrics;
    if (registry == nullptr && obs::trace_enabled()) {
        registry = &obs::global_metrics();
    }
    PlanInstruments out;
    if (registry != nullptr) {
        out.arms_pulled = &registry->counter("extradeep_plan_arms_pulled");
        out.budget_spent = &registry->counter("extradeep_plan_budget_spent");
        out.refit_latency_us = &registry->histogram(
            "extradeep_plan_refit_latency_us",
            obs::MetricsRegistry::default_latency_buckets_us());
    }
    return out;
}

/// Runs one fit on the pool's submit() lane and blocks for the result.
/// run_plan is a control loop, not a parallel region: dispatching the
/// numerically heavy refit keeps it off the caller's stack (the fleet
/// refit pattern) while the plan itself stays strictly sequential - and
/// therefore bit-reproducible - because the caller waits.
modeling::PerformanceModel refit_on_pool(
    ThreadPool& pool, const modeling::ModelGenerator& generator,
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values,
    const std::vector<std::string>& param_names) {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
    modeling::PerformanceModel model;
    pool.submit([&] {
        // submit() tasks must not throw; park any fit error for the waiter.
        try {
            model = generator.fit(points, values, param_names);
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            done = true;
        }
        cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done; });
    if (error) {
        std::rethrow_exception(error);
    }
    return model;
}

std::string growth_string(const modeling::PerformanceModel& model,
                          std::size_t num_params) {
    std::ostringstream os;
    for (std::size_t d = 0; d < num_params; ++d) {
        os << (d == 0 ? "" : ", ") << model.growth_to_string(static_cast<int>(d));
    }
    return os.str();
}

}  // namespace

PlanResult run_plan(eval::MeasurementSource& source,
                    const PlanOptions& options) {
    const obs::Span plan_span{"plan.run"};
    const std::size_t num_arms = source.num_configs();
    modeling::FitOptions fit_options;
    fit_options.num_threads = options.num_threads;
    if (num_arms < static_cast<std::size_t>(fit_options.min_points)) {
        throw InvalidArgumentError(
            "run_plan: fewer candidate configurations than the fitter's "
            "min_points");
    }
    if (options.seed_pulls < 1 || options.max_pulls_per_arm < options.seed_pulls) {
        throw InvalidArgumentError(
            "run_plan: seed_pulls must be in [1, max_pulls_per_arm]");
    }
    if (!(options.target_rel_width > 0.0)) {
        throw InvalidArgumentError("run_plan: target_rel_width must be > 0");
    }

    PlanResult result;
    result.param_names = source.param_names();
    double budget = static_cast<double>(options.budget);
    for (std::size_t a = 0; a < num_arms; ++a) {
        ArmState arm;
        arm.point = source.point(a);
        result.arms.push_back(std::move(arm));
        result.baseline_runs +=
            source.run_cost(a) * static_cast<double>(options.max_pulls_per_arm);
    }
    if (options.budget <= 0) {
        budget = result.baseline_runs;
    }

    const PlanInstruments instruments = resolve_instruments(options);
    const obs::Clock& clock =
        options.clock != nullptr ? *options.clock : obs::steady_clock_instance();
    const modeling::ModelGenerator generator(fit_options);
    // One background lane is enough: refits are strictly sequential.
    ThreadPool refit_pool(2);

    const auto pull = [&](std::size_t a) {
        const obs::Span pull_span{"plan.pull"};
        ArmState& arm = result.arms[a];
        const double value = source.measure(a, arm.pulls);
        arm.values.push_back(value);
        ++arm.pulls;
        double sum = 0.0;
        for (const double v : arm.values) {
            sum += v;
        }
        arm.mean = sum / static_cast<double>(arm.values.size());
        result.runs_used += source.run_cost(a);
        if (instruments.arms_pulled != nullptr) {
            instruments.arms_pulled->increment(1);
            instruments.budget_spent->increment(static_cast<std::uint64_t>(
                std::llround(source.run_cost(a))));
        }
    };

    const auto refit = [&]() {
        const obs::Span refit_span{"plan.refit"};
        std::vector<std::vector<double>> points;
        std::vector<double> values;
        points.reserve(num_arms);
        values.reserve(num_arms);
        for (const ArmState& arm : result.arms) {
            points.push_back(arm.point);
            values.push_back(arm.mean);
        }
        const obs::ScopedLatencyTimer timer(clock, instruments.refit_latency_us);
        return refit_on_pool(refit_pool, generator, points, values,
                             result.param_names);
    };

    const auto rel_width = [&](const ArmState& arm) {
        const double half =
            result.model.interval_half_width(arm.point, options.confidence);
        const double scale =
            std::max(std::abs(result.model.evaluate(arm.point)), 1e-12);
        return half / (std::sqrt(static_cast<double>(arm.pulls)) * scale);
    };

    // Scores all arms after a refit, retires settled/exhausted ones, and
    // records the round. Returns the cumulative elimination count.
    std::string previous_growth;
    const auto close_round = [&](int round, int arm_pulled, int pulls) {
        PlanRound record;
        record.round = round;
        record.arm_pulled = arm_pulled;
        record.pulls_this_round = pulls;
        record.budget_spent = result.runs_used;
        record.fitted = result.model.to_string();
        record.growth = growth_string(result.model, result.param_names.size());
        record.growth_changed = record.growth != previous_growth && round > 0;
        previous_growth = record.growth;
        double max_active = 0.0;
        int eliminated_total = 0;
        for (ArmState& arm : result.arms) {
            if (arm.eliminated) {
                ++eliminated_total;
                continue;
            }
            arm.last_rel_width = rel_width(arm);
            const double bar =
                arm.pulls >= options.trusted_pulls
                    ? options.target_rel_width
                    : options.target_rel_width * options.untrusted_margin;
            if (arm.last_rel_width <= bar) {
                arm.eliminated = true;
                arm.eliminated_round = round;
                arm.eliminated_reason = "confident";
                ++eliminated_total;
            } else if (arm.pulls >= options.max_pulls_per_arm) {
                arm.eliminated = true;
                arm.eliminated_round = round;
                arm.eliminated_reason = "exhausted";
                ++eliminated_total;
            } else {
                max_active = std::max(max_active, arm.last_rel_width);
            }
        }
        record.max_rel_width = max_active;
        record.eliminated_total = eliminated_total;
        result.rounds.push_back(std::move(record));
    };

    // Round 0: seed every arm so the fit sees one mean per configuration.
    {
        double seed_cost = 0.0;
        for (std::size_t a = 0; a < num_arms; ++a) {
            seed_cost += source.run_cost(a) *
                         static_cast<double>(options.seed_pulls);
        }
        if (seed_cost > budget) {
            throw InvalidArgumentError(
                "run_plan: budget cannot cover the seed round");
        }
    }
    int seed_pull_count = 0;
    for (std::size_t a = 0; a < num_arms; ++a) {
        for (int p = 0; p < options.seed_pulls; ++p) {
            pull(a);
            ++seed_pull_count;
        }
    }
    result.model = refit();
    close_round(0, -1, seed_pull_count);

    // Racing loop: pull the least-certain surviving arm, refit, re-score.
    for (int round = 1;; ++round) {
        int next = -1;
        double best = -1.0;
        for (std::size_t a = 0; a < num_arms; ++a) {
            const ArmState& arm = result.arms[a];
            if (arm.eliminated) {
                continue;
            }
            // Strict > breaks score ties toward the lowest arm index; the
            // determinism suite pins this.
            if (arm.last_rel_width > best) {
                best = arm.last_rel_width;
                next = static_cast<int>(a);
            }
        }
        if (next < 0) {
            bool all_confident = true;
            for (const ArmState& arm : result.arms) {
                all_confident = all_confident &&
                                arm.eliminated_reason == "confident";
            }
            result.stop_reason = all_confident ? "confidence" : "exhausted";
            break;
        }
        if (result.runs_used + source.run_cost(static_cast<std::size_t>(next)) >
            budget) {
            result.stop_reason = "budget";
            break;
        }
        pull(static_cast<std::size_t>(next));
        result.model = refit();
        close_round(round, next, 1);
    }

    result.cost_reduction_pct =
        100.0 * (1.0 - result.runs_used /
                           std::max(result.baseline_runs, 1e-12));
    return result;
}

}  // namespace extradeep::planner
