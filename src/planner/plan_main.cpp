// extradeep-plan: the adaptive profiling planner.
//
// Treats the oracle suite's candidate configurations as arms and races
// them: seed every arm with one profiled run, fit, then keep profiling the
// configuration whose prediction is least certain until every arm settles
// below the confidence target or the budget runs out. Emits a human table,
// the machine-readable BENCH_plan.json (schema extradeep-plan/1), and
// optionally enforces plan_thresholds.json (the `plan_accuracy_gate`
// ctest): the planner must reach the eval-harness recovery/extrapolation
// thresholds with materially fewer profiled runs than the fixed 5-point
// grid.
//
// Usage:
//   extradeep-plan                        # full suite
//   extradeep-plan --quick                # gate subset
//   extradeep-plan --smoke                # ASan-reduced subset
//   extradeep-plan --case linear --noise 0,0.05 --seed 7
//   extradeep-plan --out BENCH_plan.json
//   extradeep-plan --thresholds plan_thresholds.json   # exit 1 on violation
//   extradeep-plan --list

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "eval/oracle.hpp"
#include "obs/session.hpp"
#include "planner/report.hpp"

using namespace extradeep;

namespace {

void usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--quick] [--smoke] [--case NAME]... [--noise S1,S2,...]\n"
        "          [--seed N] [--threads N] [--budget N] [--max-pulls N]\n"
        "          [--target-rel-width W] [--out FILE] [--thresholds FILE]\n"
        "          [--list] [--trace SPEC]\n",
        argv0);
}

std::vector<double> parse_noise_list(const std::string& arg) {
    std::vector<double> out;
    std::size_t pos = 0;
    while (pos <= arg.size()) {
        const std::size_t comma = arg.find(',', pos);
        const std::string token =
            arg.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (token.empty()) {
            throw InvalidArgumentError("--noise: empty entry in '" + arg + "'");
        }
        std::size_t used = 0;
        const double v = std::stod(token, &used);
        if (used != token.size() || v < 0.0) {
            throw InvalidArgumentError("--noise: bad sigma '" + token + "'");
        }
        out.push_back(v);
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    return out;
}

/// Best-effort git revision for the BENCH_plan.json trajectory.
std::string git_revision() {
    std::string rev = "unknown";
    if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        if (std::fgets(buf, sizeof(buf), p) != nullptr) {
            std::string s(buf);
            while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
                s.pop_back();
            }
            if (!s.empty()) {
                rev = s;
            }
        }
        pclose(p);
    }
    return rev;
}

/// The ASan-reduced smoke subset: two representative single-parameter
/// shapes (exact polynomial, polylogarithmic). Thresholds are written
/// against wildcard-case rules so the same plan_thresholds.json gates
/// every subset.
std::vector<eval::OracleCase> smoke_cases() {
    std::vector<eval::OracleCase> out;
    for (auto& c : eval::default_oracle_cases()) {
        if (c.name == "linear" || c.name == "xlogx") {
            out.push_back(std::move(c));
        }
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool smoke = false;
    bool list = false;
    std::vector<std::string> only_cases;
    std::vector<double> noise_levels;
    std::string out_path;
    std::string thresholds_path;
    std::string trace_spec;
    bool trace_given = false;
    std::uint64_t seed = 1;
    planner::PlanOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                throw InvalidArgumentError(std::string(flag) +
                                           " requires a value");
            }
            return argv[++i];
        };
        try {
            if (arg == "--quick") {
                quick = true;
            } else if (arg == "--smoke") {
                smoke = true;
            } else if (arg == "--list") {
                list = true;
            } else if (arg == "--case") {
                only_cases.push_back(next_value("--case"));
            } else if (arg == "--noise") {
                noise_levels = parse_noise_list(next_value("--noise"));
            } else if (arg == "--seed") {
                seed = std::stoull(next_value("--seed"));
            } else if (arg == "--threads") {
                options.num_threads = std::stoi(next_value("--threads"));
            } else if (arg == "--budget") {
                options.budget = std::stoi(next_value("--budget"));
            } else if (arg == "--max-pulls") {
                options.max_pulls_per_arm =
                    std::stoi(next_value("--max-pulls"));
            } else if (arg == "--target-rel-width") {
                options.target_rel_width =
                    std::stod(next_value("--target-rel-width"));
            } else if (arg == "--out") {
                out_path = next_value("--out");
            } else if (arg == "--thresholds") {
                thresholds_path = next_value("--thresholds");
            } else if (arg == "--trace") {
                trace_spec = next_value("--trace");
                trace_given = true;
            } else if (arg == "-h" || arg == "--help") {
                usage(argv[0]);
                return 0;
            } else {
                std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
                usage(argv[0]);
                return 2;
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }

    try {
        obs::ObsConfig obs_config = trace_given
                                        ? obs::parse_obs_config(trace_spec)
                                        : obs::obs_config_from_env();
        const bool default_x1 =
            obs_config.params.find("x1") == obs_config.params.end();
        obs::ObsSession session(std::move(obs_config));
        if (session.config().enabled && default_x1) {
            session.set_param("x1", static_cast<double>(options.num_threads));
        }

        std::vector<eval::OracleCase> cases =
            smoke   ? smoke_cases()
            : quick ? eval::quick_oracle_cases()
                    : eval::default_oracle_cases();
        if (!only_cases.empty()) {
            std::vector<eval::OracleCase> filtered;
            for (auto& c : eval::default_oracle_cases()) {
                for (const auto& want : only_cases) {
                    if (c.name == want) {
                        filtered.push_back(std::move(c));
                        break;
                    }
                }
            }
            if (filtered.size() != only_cases.size()) {
                std::fprintf(stderr, "error: unknown case name in --case\n");
                return 2;
            }
            cases = std::move(filtered);
        }
        if (list) {
            for (const auto& c : cases) {
                std::printf("%-18s %zu params, %zu points: %s\n",
                            c.name.c_str(), c.num_params(), c.points.size(),
                            c.truth.to_string().c_str());
            }
            return 0;
        }
        if (noise_levels.empty()) {
            noise_levels = (quick || smoke)
                               ? std::vector<double>{0.0, 0.05}
                               : std::vector<double>{0.0, 0.02, 0.05, 0.10};
        }

        const std::vector<planner::PlanCaseReport> reports =
            planner::plan_suite(cases, noise_levels, seed, options);
        std::printf("%s\n", planner::render_table(reports).c_str());
        for (const auto& r : reports) {
            if (!r.accuracy.exact_recovery) {
                std::printf("note: %s @ noise %.3f fitted [%s], truth [%s]\n",
                            r.case_name.c_str(), r.noise,
                            r.fitted_str.c_str(), r.truth_str.c_str());
            }
        }

        const std::vector<eval::MetricRecord> records =
            planner::to_records(reports);
        if (!out_path.empty()) {
            std::ofstream out(out_path);
            if (!out) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             out_path.c_str());
                return 2;
            }
            out << planner::plan_json(reports, git_revision());
            std::printf("wrote %zu plans (%zu records) to %s\n",
                        reports.size(), records.size(), out_path.c_str());
        }

        if (!thresholds_path.empty()) {
            const eval::GateResult gate =
                planner::check_plan_gate_file(records, thresholds_path);
            std::printf("gate: %zu rules, %zu records matched\n",
                        gate.rules_checked, gate.records_matched);
            if (!gate.pass) {
                for (const auto& v : gate.violations) {
                    std::fprintf(stderr, "GATE VIOLATION: %s\n", v.c_str());
                }
                std::fprintf(stderr, "plan gate FAILED (%zu violations)\n",
                             gate.violations.size());
                return 1;
            }
            std::printf("plan gate passed\n");
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
