#include "planner/report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/gate.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "obs/trace.hpp"

namespace extradeep::planner {

PlanCaseReport plan_case(const eval::OracleCase& oracle, double noise,
                         std::uint64_t seed, const PlanOptions& options) {
    const obs::Span span{"plan.case"};
    eval::MaterializeOptions mat;
    mat.noise = noise;
    mat.seed = seed;
    eval::OracleMeasurementSource source(oracle, mat);

    PlanCaseReport report;
    report.case_name = oracle.name;
    report.noise = noise;
    report.seed = seed;
    report.truth_str = oracle.truth.to_string();
    report.plan = run_plan(source, options);
    report.fitted_str = report.plan.model.to_string();
    report.accuracy = eval::score_model(oracle, report.plan.model);
    return report;
}

std::vector<PlanCaseReport> plan_suite(
    const std::vector<eval::OracleCase>& cases,
    const std::vector<double>& noise_levels, std::uint64_t seed,
    const PlanOptions& options) {
    std::vector<PlanCaseReport> reports;
    reports.reserve(cases.size() * noise_levels.size());
    for (const auto& oracle : cases) {
        for (const double noise : noise_levels) {
            reports.push_back(plan_case(oracle, noise, seed, options));
        }
    }
    return reports;
}

namespace {

void add_record(std::vector<eval::MetricRecord>& out,
                const std::string& case_name, double noise,
                std::uint64_t seed, const std::string& metric, double value) {
    eval::MetricRecord r;
    r.case_name = case_name;
    r.noise = noise;
    r.metric = metric;
    r.value = value;
    r.seed = seed;
    out.push_back(std::move(r));
}

}  // namespace

std::vector<eval::MetricRecord> to_records(
    const std::vector<PlanCaseReport>& reports) {
    std::vector<eval::MetricRecord> out;
    double total_runs = 0.0;
    double total_baseline = 0.0;
    double reduction_sum = 0.0;
    double reduction_min = 100.0;
    for (const PlanCaseReport& r : reports) {
        add_record(out, r.case_name, r.noise, r.seed, "runs_used",
                   r.plan.runs_used);
        add_record(out, r.case_name, r.noise, r.seed, "baseline_runs",
                   r.plan.baseline_runs);
        add_record(out, r.case_name, r.noise, r.seed, "cost_reduction_pct",
                   r.plan.cost_reduction_pct);
        add_record(out, r.case_name, r.noise, r.seed, "rounds",
                   static_cast<double>(r.plan.rounds.size()));
        add_record(out, r.case_name, r.noise, r.seed, "exponent_recovery",
                   r.accuracy.exact_recovery ? 1.0 : 0.0);
        add_record(out, r.case_name, r.noise, r.seed, "smape_in_range",
                   r.accuracy.smape_in_range);
        add_record(out, r.case_name, r.noise, r.seed, "extrap_error_2x",
                   r.accuracy.extrap_error[0]);
        add_record(out, r.case_name, r.noise, r.seed, "extrap_error_4x",
                   r.accuracy.extrap_error[1]);
        add_record(out, r.case_name, r.noise, r.seed, "extrap_error_8x",
                   r.accuracy.extrap_error[2]);
        total_runs += r.plan.runs_used;
        total_baseline += r.plan.baseline_runs;
        reduction_sum += r.plan.cost_reduction_pct;
        reduction_min = std::min(reduction_min, r.plan.cost_reduction_pct);
    }
    if (!reports.empty()) {
        const std::uint64_t seed = reports.front().seed;
        const double n = static_cast<double>(reports.size());
        add_record(out, "suite", 0.0, seed, "mean_cost_reduction_pct",
                   reduction_sum / n);
        add_record(out, "suite", 0.0, seed, "min_cost_reduction_pct",
                   reduction_min);
        add_record(out, "suite", 0.0, seed, "total_runs_used", total_runs);
        add_record(out, "suite", 0.0, seed, "total_baseline_runs",
                   total_baseline);
        add_record(out, "suite", 0.0, seed, "paper_sampling_reduction_pct",
                   kPaperSamplingReductionPct);
    }
    return out;
}

std::string render_table(const std::vector<PlanCaseReport>& reports) {
    Table table({"case", "noise", "runs", "grid", "saved", "recovered",
                 "SMAPE in-range", "err 8x", "stop", "rounds"});
    double reduction_sum = 0.0;
    for (const PlanCaseReport& r : reports) {
        table.add_row({r.case_name, fmt::fixed(r.noise, 3),
                       fmt::fixed(r.plan.runs_used, 0),
                       fmt::fixed(r.plan.baseline_runs, 0),
                       fmt::fixed(r.plan.cost_reduction_pct, 1) + "%",
                       r.accuracy.exact_recovery ? "yes" : "NO",
                       fmt::percent(r.accuracy.smape_in_range),
                       fmt::percent(r.accuracy.extrap_error[2]),
                       r.plan.stop_reason,
                       std::to_string(r.plan.rounds.size())});
        reduction_sum += r.plan.cost_reduction_pct;
    }
    std::ostringstream os;
    os << table.to_string();
    if (!reports.empty()) {
        os << "\nmean profiling-cost reduction: "
           << fmt::fixed(reduction_sum /
                             static_cast<double>(reports.size()), 1)
           << "% of fixed-grid runs saved (paper's within-run step-sampling "
              "reduction: "
           << fmt::fixed(kPaperSamplingReductionPct, 1) << "%)\n";
    }
    return os.str();
}

std::string plan_json(const std::vector<PlanCaseReport>& reports,
                      const std::string& git_rev) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": " << json::quote("extradeep-plan/1") << ",\n";
    os << "  \"git_rev\": " << json::quote(git_rev) << ",\n";
    os << "  \"paper_sampling_reduction_pct\": "
       << json::number(kPaperSamplingReductionPct) << ",\n";
    os << "  \"plans\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const PlanCaseReport& r = reports[i];
        os << "    {\"case\": " << json::quote(r.case_name)
           << ", \"noise\": " << json::number(r.noise)
           << ", \"seed\": " << r.seed
           << ", \"stop\": " << json::quote(r.plan.stop_reason)
           << ", \"runs_used\": " << json::number(r.plan.runs_used)
           << ", \"baseline_runs\": " << json::number(r.plan.baseline_runs)
           << ", \"cost_reduction_pct\": "
           << json::number(r.plan.cost_reduction_pct)
           << ", \"recovered\": "
           << (r.accuracy.exact_recovery ? "true" : "false")
           << ", \"truth\": " << json::quote(r.truth_str)
           << ", \"fitted\": " << json::quote(r.fitted_str) << ",\n";
        os << "     \"arms\": [";
        for (std::size_t a = 0; a < r.plan.arms.size(); ++a) {
            const ArmState& arm = r.plan.arms[a];
            os << (a == 0 ? "" : ", ") << "{\"point\": [";
            for (std::size_t d = 0; d < arm.point.size(); ++d) {
                os << (d == 0 ? "" : ", ") << json::number(arm.point[d]);
            }
            os << "], \"pulls\": " << arm.pulls
               << ", \"mean\": " << json::number(arm.mean)
               << ", \"rel_width\": " << json::number(arm.last_rel_width)
               << ", \"eliminated_round\": " << arm.eliminated_round
               << ", \"reason\": " << json::quote(arm.eliminated_reason)
               << "}";
        }
        os << "],\n";
        os << "     \"rounds\": [";
        for (std::size_t k = 0; k < r.plan.rounds.size(); ++k) {
            const PlanRound& round = r.plan.rounds[k];
            os << (k == 0 ? "" : ", ") << "{\"round\": " << round.round
               << ", \"arm\": " << round.arm_pulled
               << ", \"pulls\": " << round.pulls_this_round
               << ", \"budget_spent\": " << json::number(round.budget_spent)
               << ", \"max_rel_width\": " << json::number(round.max_rel_width)
               << ", \"growth\": " << json::quote(round.growth)
               << ", \"growth_changed\": "
               << (round.growth_changed ? "true" : "false")
               << ", \"eliminated\": " << round.eliminated_total << "}";
        }
        os << "]}" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"records\": [\n";
    const std::vector<eval::MetricRecord> records = to_records(reports);
    for (std::size_t i = 0; i < records.size(); ++i) {
        const eval::MetricRecord& r = records[i];
        os << "    {\"case\": " << json::quote(r.case_name)
           << ", \"noise\": " << json::number(r.noise)
           << ", \"metric\": " << json::quote(r.metric)
           << ", \"value\": " << json::number(r.value)
           << ", \"seed\": " << r.seed << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

eval::GateResult check_plan_gate(const std::vector<eval::MetricRecord>& records,
                                 const std::string& thresholds_json) {
    gate::RuleDocSpec spec;
    spec.what = "plan thresholds JSON";
    const std::vector<gate::Rule> rules =
        gate::parse_rules(thresholds_json, spec);

    std::vector<gate::Sample> samples;
    samples.reserve(records.size());
    for (const eval::MetricRecord& r : records) {
        samples.push_back({r.case_name, r.noise, r.metric, r.value});
    }
    const gate::Outcome outcome = gate::check_rules(samples, rules);

    eval::GateResult result;
    result.pass = outcome.pass;
    result.rules_checked = outcome.rules_checked;
    result.records_matched = outcome.samples_matched;
    for (const gate::Violation& v : outcome.violations) {
        if (v.kind == gate::Violation::Kind::Unmatched) {
            const gate::Rule& rule = rules[v.rule];
            result.violations.push_back(
                "threshold for metric '" + rule.metric + "' (case " +
                rule.scope + ") matched no record - the gate would be "
                "silently disabled");
            continue;
        }
        const eval::MetricRecord& r = records[v.sample];
        std::ostringstream where;
        where << r.case_name << " @ noise " << fmt::fixed(r.noise, 3) << ": "
              << r.metric << " = " << json::number(r.value);
        result.violations.push_back(
            where.str() +
            (v.kind == gate::Violation::Kind::BelowMin ? " < min " : " > max ") +
            json::number(v.bound));
    }
    return result;
}

eval::GateResult check_plan_gate_file(
    const std::vector<eval::MetricRecord>& records, const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error("check_plan_gate_file: cannot open " + path);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return check_plan_gate(records, os.str());
}

}  // namespace extradeep::planner
