#pragma once

#include <string>

namespace extradeep::hw {

/// Alpha-beta link model: a message of `n` bytes costs
/// latency + n / bandwidth. All collective cost models below are built from
/// this primitive.
struct LinkSpec {
    double latency_s = 1.5e-6;       ///< alpha, per-message latency
    double bandwidth_gbs = 12.5;     ///< beta, sustained bandwidth [GB/s]

    /// Point-to-point time for `bytes`.
    double p2p_time(double bytes) const;
};

/// Classic ring allreduce: 2(p-1) latency phases, each moving bytes/p, for a
/// total of 2*(p-1)/p * bytes over the wire per rank. The (p-1)/p factor is
/// intentionally outside the PMNF function space, which is one source of the
/// paper's growing extrapolation error.
double ring_allreduce_time(const LinkSpec& link, double bytes, int p);

/// Binomial-tree allreduce (reduce + broadcast): 2*ceil(log2 p) rounds of the
/// full message. Preferable for small messages / large latency.
double tree_allreduce_time(const LinkSpec& link, double bytes, int p);

/// MPI-style allreduce: the better of ring and tree, as real MPI libraries
/// switch algorithms by message size (a scale-dependent behaviour the paper
/// calls out as a modeling hazard in Sec. 4.3).
double mpi_allreduce_time(const LinkSpec& link, double bytes, int p);

/// Ring allgather: (p-1) rounds, each moving bytes/p.
double allgather_time(const LinkSpec& link, double bytes, int p);

/// Ring reduce-scatter: (p-1) rounds, each moving bytes/p.
double reduce_scatter_time(const LinkSpec& link, double bytes, int p);

/// Binomial broadcast: ceil(log2 p) rounds of the full message.
double broadcast_time(const LinkSpec& link, double bytes, int p);

/// Hierarchical (NCCL-style) allreduce over `nodes` nodes with
/// `gpus_per_node` GPUs each: intra-node reduce-scatter + inter-node ring
/// allreduce on the shard + intra-node allgather, using the fast intra-node
/// links for the local phases. Falls back to a flat ring when there is only
/// one GPU per node.
double hierarchical_allreduce_time(const LinkSpec& inter, const LinkSpec& intra,
                                   double bytes, int nodes, int gpus_per_node);

}  // namespace extradeep::hw
