#include "hw/system.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace extradeep::hw {

double NoiseSpec::compute_sigma(int ranks) const {
    if (ranks < 1) {
        throw InvalidArgumentError("compute_sigma: ranks must be >= 1");
    }
    return base_sigma + sigma_per_sqrt_rank * std::sqrt(static_cast<double>(ranks));
}

double NoiseSpec::comm_sigma(int ranks) const {
    return compute_sigma(ranks) + comm_sigma_extra;
}

int SystemSpec::nodes_for_ranks(int ranks) const {
    if (ranks < 1) {
        throw InvalidArgumentError("nodes_for_ranks: ranks must be >= 1");
    }
    return (ranks + gpus_per_node - 1) / gpus_per_node;
}

SystemSpec SystemSpec::deep() {
    SystemSpec s;
    s.name = "DEEP";
    s.node_count = 75;
    s.gpus_per_node = 1;
    s.cores_per_node = 8;
    s.cores_per_rank = 8;
    s.gpu = GpuSpec::v100();
    // InfiniBand EDR is 100 Gbit/s on the wire, but Horovod's MPI path on
    // this system stages GPU buffers through host memory without overlap;
    // the *achieved* payload bandwidth per allreduce is far lower, and each
    // collective pays a Horovod negotiation round (~25 us).
    s.inter_node = LinkSpec{25e-6, 1.2};
    // Single GPU per node: intra-node link is PCIe (unused for collectives).
    s.intra_node = LinkSpec{2.0e-6, 12.0};
    s.nccl_support = false;
    s.network_contention_factor = 0.3;
    s.noise = NoiseSpec{0.02, 0.006, 0.025, 0.008, 0.12};
    // 8-core Xeon Silver doing decode + augmentation in tf.data.
    s.preprocess_rate_samples_per_s = 1600.0;
    s.io_read_gbs = 1.0;
    return s;
}

SystemSpec SystemSpec::jureca() {
    SystemSpec s;
    s.name = "JURECA";
    s.node_count = 192;
    s.gpus_per_node = 4;
    s.cores_per_node = 128;
    s.cores_per_rank = 32;  // 128 cores shared by 4 ranks (one per GPU)
    s.gpu = GpuSpec::a100();
    // 2x InfiniBand HDR with GPUDirect RDMA under NCCL: high achieved
    // bandwidth and low latency.
    s.inter_node = LinkSpec{5e-6, 20.0};
    // NVLink3 between the 4 A100s of a node.
    s.intra_node = LinkSpec{0.7e-6, 300.0};
    s.nccl_support = true;
    s.network_contention_factor = 0.22;
    s.noise = NoiseSpec{0.025, 0.009, 0.035, 0.012, 0.15};
    // 32 EPYC cores per rank feed the input pipeline.
    s.preprocess_rate_samples_per_s = 4000.0;
    s.io_read_gbs = 2.0;
    return s;
}

std::string SystemSpec::describe() const {
    std::ostringstream os;
    os << name << ": " << node_count << " nodes, " << gpus_per_node << "x "
       << gpu.name << "/node, " << cores_per_node << " cores/node, IB "
       << inter_node.bandwidth_gbs << " GB/s, NCCL "
       << (nccl_support ? "yes" : "no");
    return os.str();
}

double contention_multiplier(const SystemSpec& sys, int nodes) {
    if (nodes < 1) {
        throw InvalidArgumentError("contention_multiplier: nodes must be >= 1");
    }
    if (nodes == 1) {
        return 1.0;  // no inter-node traffic
    }
    // Sub-linear growth with the job's node footprint (sqrt of the node
    // count). Together with the ring term's (p-1)/p factor and the stepwise
    // algorithm regimes below, the *total* communication cost is outside
    // the PMNF space, which is what limits extrapolation accuracy at scale
    // (paper Sec. 4.3).
    return 1.0 + sys.network_contention_factor *
                     std::sqrt(static_cast<double>(nodes));
}

double algorithm_regime_factor(int nodes) {
    // Communication libraries switch collective algorithms as the job grows
    // (ring -> segmented ring -> Rabenseifner/tree hybrids); each regime
    // trades bandwidth for latency differently. The switches happen *above*
    // typical modeling scales, so small-scale measurements cannot see them -
    // the scale-dependent behaviour change the paper names as the main limit
    // of extrapolation (Sec. 4.3).
    double f = 1.0;
    for (const int threshold : {16, 32, 64, 128}) {
        if (nodes > threshold) {
            f *= 1.06;
        }
    }
    return f;
}

double allreduce_time(const SystemSpec& sys, double bytes, int ranks) {
    if (ranks < 1) {
        throw InvalidArgumentError("allreduce_time: ranks must be >= 1");
    }
    if (ranks == 1) return 0.0;
    const int nodes = sys.nodes_for_ranks(ranks);
    if (sys.collective_override != CollectiveOverride::Auto) {
        // Pinned algorithm: flat inter-node closed form regardless of NCCL
        // topology, so the swap is a pure alpha-beta substitution the
        // advisor can mirror analytically.
        const double flat =
            sys.collective_override == CollectiveOverride::Ring
                ? ring_allreduce_time(sys.inter_node, bytes, ranks)
                : tree_allreduce_time(sys.inter_node, bytes, ranks);
        return flat * contention_multiplier(sys, nodes) *
               algorithm_regime_factor(nodes);
    }
    if (sys.nccl_support && sys.gpus_per_node > 1) {
        if (nodes == 1) {
            // All ranks inside one node: pure NVLink ring.
            return ring_allreduce_time(sys.intra_node, bytes, ranks);
        }
        const int local = std::min(ranks, sys.gpus_per_node);
        return hierarchical_allreduce_time(sys.inter_node, sys.intra_node,
                                           bytes, nodes, local) *
               contention_multiplier(sys, nodes) *
               algorithm_regime_factor(nodes);
    }
    return mpi_allreduce_time(sys.inter_node, bytes, ranks) *
           contention_multiplier(sys, nodes) * algorithm_regime_factor(nodes);
}

double system_allgather_time(const SystemSpec& sys, double bytes, int ranks) {
    if (ranks < 1) {
        throw InvalidArgumentError("system_allgather_time: ranks must be >= 1");
    }
    if (ranks == 1) return 0.0;
    // Tensor-parallel groups are placed within a node when possible.
    if (ranks <= sys.gpus_per_node) {
        return allgather_time(sys.intra_node, bytes, ranks);
    }
    const int nodes = sys.nodes_for_ranks(ranks);
    return allgather_time(sys.inter_node, bytes, ranks) *
           contention_multiplier(sys, nodes) * algorithm_regime_factor(nodes);
}

double p2p_time(const SystemSpec& sys, double bytes, bool same_node) {
    return same_node ? sys.intra_node.p2p_time(bytes)
                     : sys.inter_node.p2p_time(bytes);
}

}  // namespace extradeep::hw
