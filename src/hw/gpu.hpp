#pragma once

#include <string>

namespace extradeep::hw {

/// Analytical GPU description used by the roofline kernel cost model.
/// The simulator substitutes this for the paper's physical V100/A100 GPUs;
/// only relative magnitudes and scaling shapes matter for Extra-Deep, not
/// absolute device accuracy.
struct GpuSpec {
    std::string name;
    double peak_fp32_tflops = 0.0;      ///< peak single-precision throughput
    double mem_bandwidth_gbs = 0.0;     ///< HBM bandwidth [GB/s]
    double kernel_launch_overhead_s = 4e-6;  ///< fixed per-kernel launch cost
    double pcie_bandwidth_gbs = 12.0;   ///< host<->device copy bandwidth
    double memory_gib = 16.0;           ///< device memory capacity

    /// NVIDIA V100 (DEEP Extreme Scale Booster nodes, paper Table 1).
    static GpuSpec v100();
    /// NVIDIA A100 (JURECA DC module nodes, paper Table 1).
    static GpuSpec a100();
};

/// Roofline execution time of a GPU kernel: launch overhead plus the larger
/// of the compute time (at `efficiency` x peak FLOPs) and the memory time
/// (at full HBM bandwidth). `efficiency` in (0, 1] captures how well a given
/// layer type utilises the device (convolutions ~0.5, elementwise ~0.05, ...).
double kernel_time(const GpuSpec& gpu, double flops, double bytes,
                   double efficiency);

/// Host<->device copy time over PCIe, with a fixed setup latency.
double memcpy_time(const GpuSpec& gpu, double bytes);

/// Device memset time at full memory bandwidth, with launch overhead.
double memset_time(const GpuSpec& gpu, double bytes);

}  // namespace extradeep::hw
