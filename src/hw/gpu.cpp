#include "hw/gpu.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace extradeep::hw {

GpuSpec GpuSpec::v100() {
    GpuSpec g;
    g.name = "V100";
    g.peak_fp32_tflops = 15.7;
    g.mem_bandwidth_gbs = 900.0;
    g.kernel_launch_overhead_s = 4.5e-6;
    g.pcie_bandwidth_gbs = 12.0;
    g.memory_gib = 16.0;
    return g;
}

GpuSpec GpuSpec::a100() {
    GpuSpec g;
    g.name = "A100";
    g.peak_fp32_tflops = 19.5;
    g.mem_bandwidth_gbs = 1555.0;
    g.kernel_launch_overhead_s = 3.5e-6;
    g.pcie_bandwidth_gbs = 24.0;
    g.memory_gib = 40.0;
    return g;
}

double kernel_time(const GpuSpec& gpu, double flops, double bytes,
                   double efficiency) {
    if (efficiency <= 0.0 || efficiency > 1.0) {
        throw InvalidArgumentError("kernel_time: efficiency outside (0, 1]");
    }
    if (flops < 0.0 || bytes < 0.0) {
        throw InvalidArgumentError("kernel_time: negative flops/bytes");
    }
    const double compute_s = flops / (gpu.peak_fp32_tflops * 1e12 * efficiency);
    const double memory_s = bytes / (gpu.mem_bandwidth_gbs * 1e9);
    return gpu.kernel_launch_overhead_s + std::max(compute_s, memory_s);
}

double memcpy_time(const GpuSpec& gpu, double bytes) {
    if (bytes < 0.0) {
        throw InvalidArgumentError("memcpy_time: negative bytes");
    }
    constexpr double kSetupLatency = 8e-6;
    return kSetupLatency + bytes / (gpu.pcie_bandwidth_gbs * 1e9);
}

double memset_time(const GpuSpec& gpu, double bytes) {
    if (bytes < 0.0) {
        throw InvalidArgumentError("memset_time: negative bytes");
    }
    return gpu.kernel_launch_overhead_s + bytes / (gpu.mem_bandwidth_gbs * 1e9);
}

}  // namespace extradeep::hw
