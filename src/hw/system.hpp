#pragma once

#include <string>

#include "hw/gpu.hpp"
#include "hw/network.hpp"

namespace extradeep::hw {

/// Stochastic noise description of a system. Run-to-run variation on real
/// clusters grows with scale (paper Sec. 4.3: avg 12.6 % on DEEP, 17.4 % on
/// JURECA; case-study variation 0.6-13.9 % rising with rank count), which is
/// what these parameters reproduce.
struct NoiseSpec {
    /// Log-normal sigma applied multiplicatively to every kernel duration at
    /// a single rank (baseline jitter).
    double base_sigma = 0.02;
    /// Additional sigma proportional to sqrt(ranks), modeling growing
    /// network/system interference at scale.
    double sigma_per_sqrt_rank = 0.004;
    /// Extra sigma applied to communication operations only (network
    /// contention is noisier than on-device compute).
    double comm_sigma_extra = 0.02;
    /// Probability per training step of an OS-noise spike (daemon activity,
    /// page faults, stragglers).
    double os_spike_probability = 0.01;
    /// Mean magnitude of a spike as a fraction of the step's total time.
    double os_spike_fraction = 0.15;

    /// Effective compute-kernel sigma at a given total rank count.
    double compute_sigma(int ranks) const;
    /// Effective communication sigma at a given total rank count.
    double comm_sigma(int ranks) const;
};

/// Forces one collective algorithm for gradient allreduce instead of the
/// library's automatic choice. `Auto` keeps the default selection (NCCL
/// hierarchical or MPI min(ring, tree)); `Ring` and `Tree` pin the flat
/// inter-node closed form, which is what the what-if advisor's
/// collective-swap scenario toggles.
enum class CollectiveOverride { Auto, Ring, Tree };

/// Description of one evaluation system (paper Table 1) plus everything the
/// simulator needs: GPU model, node topology, network links, NCCL support,
/// per-rank CPU cores (the cost unit of Eq. 14), and the noise profile.
struct SystemSpec {
    std::string name;
    int node_count = 0;
    int gpus_per_node = 1;
    int cores_per_node = 8;
    /// CPU cores billed per MPI rank (rho in Eq. 14). On both paper systems
    /// a rank is billed the cores of its node share.
    int cores_per_rank = 8;
    GpuSpec gpu;
    LinkSpec inter_node;  ///< InfiniBand between nodes
    LinkSpec intra_node;  ///< NVLink/PCIe between GPUs of one node
    bool nccl_support = false;
    NoiseSpec noise;
    /// Inter-node collective times are inflated by
    /// (1 + network_contention_factor * log2(nodes involved)): incast
    /// congestion, stragglers, and switch contention grow with the job
    /// footprint. This term is deliberately outside the pure alpha-beta
    /// model and is one reason extrapolated communication models degrade
    /// with distance, as in the paper's evaluation.
    double network_contention_factor = 0.0;
    /// Pins the allreduce algorithm (what-if collective swap). Auto keeps
    /// the library's own choice.
    CollectiveOverride collective_override = CollectiveOverride::Auto;
    /// Host-side throughput for input preprocessing [samples/s per rank].
    double preprocess_rate_samples_per_s = 12000.0;
    /// Sustained file-system read bandwidth per rank [GB/s].
    double io_read_gbs = 1.2;

    /// Total ranks usable on this system (one rank per GPU).
    int max_ranks() const { return node_count * gpus_per_node; }

    /// Nodes occupied by `ranks` ranks at one rank per GPU, rounded up.
    int nodes_for_ranks(int ranks) const;

    /// DEEP Extreme Scale Booster: 75 nodes, 1x Xeon Silver 4215 (8 cores),
    /// 48 GB RAM, IB EDR 100 Gbit/s, 1x V100/node, no NCCL (Table 1).
    static SystemSpec deep();
    /// JURECA DC: 192 nodes, 2x EPYC 7742 (128 cores), 512 GB RAM, 2x IB HDR,
    /// 4x A100/node, NCCL supported (Table 1).
    static SystemSpec jureca();

    /// One-line hardware description, as printed by the bench headers.
    std::string describe() const;
};

/// Contention multiplier applied to inter-node collective traffic spanning
/// `nodes` nodes (see SystemSpec::network_contention_factor).
double contention_multiplier(const SystemSpec& sys, int nodes);

/// Stepwise collective-algorithm regime factor: communication libraries
/// switch algorithms above certain node counts (thresholds 16/32/64/128,
/// +6 % each) - scale-dependent behaviour that small-scale profiles cannot
/// observe, the paper's stated limit of extrapolation (Sec. 4.3).
double algorithm_regime_factor(int nodes);

/// Time of one gradient allreduce of `bytes` across `ranks` ranks on this
/// system: hierarchical NCCL when supported and more than one GPU per node,
/// flat MPI (ring/tree) otherwise. Includes network contention.
double allreduce_time(const SystemSpec& sys, double bytes, int ranks);

/// Allgather of `bytes` across `ranks` ranks (tensor-parallel activations).
double system_allgather_time(const SystemSpec& sys, double bytes, int ranks);

/// Point-to-point activation transfer between pipeline stages. Stages on the
/// same node use the intra-node link.
double p2p_time(const SystemSpec& sys, double bytes, bool same_node);

}  // namespace extradeep::hw
