#include "hw/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace extradeep::hw {

namespace {

void require_participants(int p, const char* fn) {
    if (p < 1) {
        throw InvalidArgumentError(std::string(fn) + ": p must be >= 1");
    }
}

int ceil_log2(int p) {
    int rounds = 0;
    int v = 1;
    while (v < p) {
        v *= 2;
        ++rounds;
    }
    return rounds;
}

}  // namespace

double LinkSpec::p2p_time(double bytes) const {
    if (bytes < 0.0) {
        throw InvalidArgumentError("p2p_time: negative bytes");
    }
    return latency_s + bytes / (bandwidth_gbs * 1e9);
}

double ring_allreduce_time(const LinkSpec& link, double bytes, int p) {
    require_participants(p, "ring_allreduce_time");
    if (p == 1) return 0.0;
    const double phases = 2.0 * (p - 1);
    const double chunk = bytes / p;
    return phases * (link.latency_s + chunk / (link.bandwidth_gbs * 1e9));
}

double tree_allreduce_time(const LinkSpec& link, double bytes, int p) {
    require_participants(p, "tree_allreduce_time");
    if (p == 1) return 0.0;
    const double rounds = 2.0 * ceil_log2(p);
    return rounds * link.p2p_time(bytes);
}

double mpi_allreduce_time(const LinkSpec& link, double bytes, int p) {
    require_participants(p, "mpi_allreduce_time");
    if (p == 1) return 0.0;
    return std::min(ring_allreduce_time(link, bytes, p),
                    tree_allreduce_time(link, bytes, p));
}

double allgather_time(const LinkSpec& link, double bytes, int p) {
    require_participants(p, "allgather_time");
    if (p == 1) return 0.0;
    const double phases = static_cast<double>(p - 1);
    const double chunk = bytes / p;
    return phases * (link.latency_s + chunk / (link.bandwidth_gbs * 1e9));
}

double reduce_scatter_time(const LinkSpec& link, double bytes, int p) {
    // Same communication structure as ring allgather.
    return allgather_time(link, bytes, p);
}

double broadcast_time(const LinkSpec& link, double bytes, int p) {
    require_participants(p, "broadcast_time");
    if (p == 1) return 0.0;
    return ceil_log2(p) * link.p2p_time(bytes);
}

double hierarchical_allreduce_time(const LinkSpec& inter, const LinkSpec& intra,
                                   double bytes, int nodes, int gpus_per_node) {
    require_participants(nodes, "hierarchical_allreduce_time");
    if (gpus_per_node < 1) {
        throw InvalidArgumentError(
            "hierarchical_allreduce_time: gpus_per_node must be >= 1");
    }
    if (gpus_per_node == 1) {
        return ring_allreduce_time(inter, bytes, nodes);
    }
    // Phase 1: intra-node reduce-scatter over the fast local links.
    const double t_local_rs = reduce_scatter_time(intra, bytes, gpus_per_node);
    // Phase 2: inter-node ring allreduce of each GPU's shard (bytes / g).
    const double t_inter =
        ring_allreduce_time(inter, bytes / gpus_per_node, nodes);
    // Phase 3: intra-node allgather to redistribute the full result.
    const double t_local_ag = allgather_time(intra, bytes, gpus_per_node);
    return t_local_rs + t_inter + t_local_ag;
}

}  // namespace extradeep::hw
