#pragma once

#include "dnn/network.hpp"

namespace extradeep::dnn {

/// ResNet-50 v1 (bottleneck blocks [3,4,6,3], expansion 4). With ImageNet
/// input and 1000 classes the parameter count matches the canonical
/// 25.56 M within rounding. Used for CIFAR-10 / CIFAR-100 in the paper.
NetworkModel resnet50(TensorShape input, int num_classes);

/// EfficientNet-B0 (MBConv blocks with squeeze-excitation, swish
/// activations); ~5.3 M parameters at 1000 classes. Used for ImageNet.
NetworkModel efficientnet_b0(TensorShape input, int num_classes);

/// The paper's "CNN with ten hidden layers" for Speech Commands:
/// 8 convolutional + 2 dense hidden layers on spectrogram input.
NetworkModel cnn10(TensorShape input, int num_classes);

/// Neural-network language model for IMDB sentiment classification:
/// token embedding, average pooling, dense classifier head.
NetworkModel nnlm(int sequence_length, std::int64_t vocab_size, int num_classes);

}  // namespace extradeep::dnn
