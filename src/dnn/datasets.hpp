#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.hpp"
#include "dnn/shape.hpp"

namespace extradeep::dnn {

/// Description of one benchmark dataset. No sample data is stored: the
/// Extra-Deep pipeline only consumes sample counts (D_t, D_v in Eqs. 2-3)
/// and per-sample sizes (I/O and preprocessing cost).
struct DatasetSpec {
    std::string name;
    std::int64_t train_samples = 0;  ///< D_t
    std::int64_t val_samples = 0;    ///< D_v
    TensorShape sample_shape;        ///< per-sample network input shape
    double bytes_per_sample = 0.0;   ///< on-disk bytes (pre-decoding)
    int num_classes = 0;

    /// The five standard datasets of the paper's evaluation (Sec. 4.1).
    static DatasetSpec cifar10();
    static DatasetSpec cifar100();
    static DatasetSpec imagenet();
    static DatasetSpec imdb();
    static DatasetSpec speech_commands();

    /// All five, in the paper's order.
    static std::vector<DatasetSpec> all();
};

/// One of the paper's five synthetic application benchmarks: a dataset plus
/// the DNN architecture trained on it (Sec. 4.1: CNN-10 for Speech Commands,
/// NNLM for IMDB, ResNet-50 for CIFAR-10/100, EfficientNet-B0 for ImageNet).
struct BenchmarkApp {
    DatasetSpec dataset;
    NetworkModel network;
};

/// Looks a dataset preset up by name without constructing the network
/// (cheap; used wherever only D_t/D_v/B matter, e.g. step-count math).
/// Throws InvalidArgumentError for unknown names.
DatasetSpec dataset_spec(const std::string& dataset_name);

/// Builds the paper's benchmark application for the given dataset name
/// ("CIFAR-10", "CIFAR-100", "ImageNet", "IMDB", "Speech Commands").
/// Throws InvalidArgumentError for unknown names.
BenchmarkApp make_benchmark(const std::string& dataset_name);

/// All five benchmarks in the paper's order.
std::vector<std::string> benchmark_names();

}  // namespace extradeep::dnn
