#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

namespace extradeep::dnn {

/// Per-sample tensor shape (no batch dimension). Image tensors are HWC,
/// sequence tensors are (length, features), flat tensors are (features).
struct TensorShape {
    std::vector<std::int64_t> dims;

    TensorShape() = default;
    TensorShape(std::initializer_list<std::int64_t> d) : dims(d) {}

    std::int64_t elements() const {
        std::int64_t n = 1;
        for (auto d : dims) n *= d;
        return dims.empty() ? 0 : n;
    }

    /// Bytes of one fp32 sample of this shape.
    double bytes() const { return 4.0 * static_cast<double>(elements()); }

    std::size_t rank() const { return dims.size(); }

    bool operator==(const TensorShape&) const = default;

    std::string to_string() const {
        std::string s = "(";
        for (std::size_t i = 0; i < dims.size(); ++i) {
            if (i) s += "x";
            s += std::to_string(dims[i]);
        }
        return s + ")";
    }
};

}  // namespace extradeep::dnn
