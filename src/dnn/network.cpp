#include "dnn/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace extradeep::dnn {

std::int64_t NetworkModel::total_params() const {
    std::int64_t n = 0;
    for (const auto& l : layers) n += l.params;
    return n;
}

double NetworkModel::gradient_bytes() const {
    double b = 0.0;
    for (const auto& l : layers) b += l.weight_bytes;
    return b;
}

double NetworkModel::flops_forward() const {
    double f = 0.0;
    for (const auto& l : layers) f += l.flops_forward;
    return f;
}

double NetworkModel::flops_backward() const {
    double f = 0.0;
    for (const auto& l : layers) f += l.flops_backward;
    return f;
}

double NetworkModel::activation_bytes() const {
    double b = 0.0;
    for (const auto& l : layers) b += l.output_bytes;
    return b;
}

std::vector<std::size_t> NetworkModel::balanced_stage_bounds(int stages) const {
    if (stages < 1 || static_cast<std::size_t>(stages) > layers.size()) {
        throw InvalidArgumentError(
            "balanced_stage_bounds: invalid stage count for this network");
    }
    const double total = flops_forward();
    std::vector<std::size_t> bounds;
    bounds.reserve(stages);
    double acc = 0.0;
    int next_stage = 1;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        acc += layers[i].flops_forward;
        // Close a stage once its share of FLOPs is reached, keeping enough
        // layers for the remaining stages.
        const double target = total * next_stage / stages;
        const std::size_t remaining_layers = layers.size() - (i + 1);
        const std::size_t remaining_stages = stages - next_stage;
        if ((acc >= target && remaining_layers >= remaining_stages &&
             next_stage < stages) ||
            remaining_layers == remaining_stages) {
            if (next_stage < stages) {
                bounds.push_back(i + 1);
                ++next_stage;
            }
        }
    }
    bounds.push_back(layers.size());
    return bounds;
}

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

}  // namespace

NetworkBuilder::NetworkBuilder(std::string network_name, TensorShape input)
    : shape_(std::move(input)) {
    model_.name = std::move(network_name);
    model_.input = shape_;
}

Layer& NetworkBuilder::push(LayerKind kind, const std::string& name,
                            const std::string& auto_prefix) {
    Layer l;
    l.kind = kind;
    l.name = name.empty()
                 ? auto_prefix + "_" + std::to_string(++auto_index_)
                 : name;
    l.input = shape_;
    model_.layers.push_back(std::move(l));
    return model_.layers.back();
}

NetworkBuilder& NetworkBuilder::conv2d(int out_channels, int kernel, int stride,
                                       const std::string& name) {
    if (shape_.rank() != 3) {
        throw InvalidArgumentError("conv2d: input must be HWC");
    }
    Layer& l = push(LayerKind::Conv2d, name, "conv");
    l.kernel_size = kernel;
    const std::int64_t h = shape_.dims[0], w = shape_.dims[1], c = shape_.dims[2];
    const std::int64_t ho = ceil_div(h, stride), wo = ceil_div(w, stride);
    l.output = TensorShape{ho, wo, out_channels};
    l.params = static_cast<std::int64_t>(c) * kernel * kernel * out_channels;
    l.flops_forward = 2.0 * static_cast<double>(ho) * wo * out_channels * c *
                      kernel * kernel;
    l.flops_backward = 2.0 * l.flops_forward;
    l.weight_bytes = 4.0 * static_cast<double>(l.params);
    l.output_bytes = l.output.bytes();
    shape_ = l.output;
    return *this;
}

NetworkBuilder& NetworkBuilder::depthwise_conv2d(int kernel, int stride,
                                                 const std::string& name) {
    if (shape_.rank() != 3) {
        throw InvalidArgumentError("depthwise_conv2d: input must be HWC");
    }
    Layer& l = push(LayerKind::DepthwiseConv2d, name, "dwconv");
    l.kernel_size = kernel;
    const std::int64_t h = shape_.dims[0], w = shape_.dims[1], c = shape_.dims[2];
    const std::int64_t ho = ceil_div(h, stride), wo = ceil_div(w, stride);
    l.output = TensorShape{ho, wo, c};
    l.params = static_cast<std::int64_t>(c) * kernel * kernel;
    l.flops_forward =
        2.0 * static_cast<double>(ho) * wo * c * kernel * kernel;
    l.flops_backward = 2.0 * l.flops_forward;
    l.weight_bytes = 4.0 * static_cast<double>(l.params);
    l.output_bytes = l.output.bytes();
    shape_ = l.output;
    return *this;
}

NetworkBuilder& NetworkBuilder::dense(int units, const std::string& name) {
    Layer& l = push(LayerKind::Dense, name, "dense");
    const std::int64_t in = shape_.elements();
    l.output = TensorShape{units};
    // Sequence inputs keep their leading dim: (len, feat) -> (len, units).
    if (shape_.rank() == 2) {
        l.output = TensorShape{shape_.dims[0], units};
        const std::int64_t feat = shape_.dims[1];
        l.params = feat * units + units;
        l.flops_forward = 2.0 * static_cast<double>(shape_.dims[0]) * feat * units;
    } else {
        l.params = in * units + units;
        l.flops_forward = 2.0 * static_cast<double>(in) * units;
    }
    l.flops_backward = 2.0 * l.flops_forward;
    l.weight_bytes = 4.0 * static_cast<double>(l.params);
    l.output_bytes = l.output.bytes();
    shape_ = l.output;
    return *this;
}

NetworkBuilder& NetworkBuilder::batch_norm(const std::string& name) {
    Layer& l = push(LayerKind::BatchNorm, name, "bn");
    const std::int64_t c = shape_.dims.back();
    l.output = shape_;
    l.params = 2 * c;  // gamma + beta (running stats are not trainable)
    l.flops_forward = 4.0 * static_cast<double>(shape_.elements());
    l.flops_backward = 4.0 * static_cast<double>(shape_.elements());
    l.weight_bytes = 4.0 * static_cast<double>(l.params);
    l.output_bytes = l.output.bytes();
    return *this;
}

NetworkBuilder& NetworkBuilder::activation(const std::string& act,
                                           const std::string& name) {
    Layer& l = push(LayerKind::Activation, name, act);
    l.output = shape_;
    // Swish/sigmoid cost ~4 flops/element, relu ~1.
    const double per_elem = (act == "relu") ? 1.0 : 4.0;
    l.flops_forward = per_elem * static_cast<double>(shape_.elements());
    l.flops_backward = l.flops_forward;
    l.output_bytes = l.output.bytes();
    return *this;
}

NetworkBuilder& NetworkBuilder::max_pool(int kernel, int stride,
                                         const std::string& name) {
    if (shape_.rank() != 3) {
        throw InvalidArgumentError("max_pool: input must be HWC");
    }
    Layer& l = push(LayerKind::MaxPool, name, "maxpool");
    l.kernel_size = kernel;
    const std::int64_t ho = ceil_div(shape_.dims[0], stride);
    const std::int64_t wo = ceil_div(shape_.dims[1], stride);
    l.output = TensorShape{ho, wo, shape_.dims[2]};
    l.flops_forward = static_cast<double>(kernel) * kernel * l.output.elements();
    l.flops_backward = static_cast<double>(l.output.elements());
    l.output_bytes = l.output.bytes();
    shape_ = l.output;
    return *this;
}

NetworkBuilder& NetworkBuilder::avg_pool(int kernel, int stride,
                                         const std::string& name) {
    if (shape_.rank() != 3) {
        throw InvalidArgumentError("avg_pool: input must be HWC");
    }
    Layer& l = push(LayerKind::AvgPool, name, "avgpool");
    l.kernel_size = kernel;
    const std::int64_t ho = ceil_div(shape_.dims[0], stride);
    const std::int64_t wo = ceil_div(shape_.dims[1], stride);
    l.output = TensorShape{ho, wo, shape_.dims[2]};
    l.flops_forward = static_cast<double>(kernel) * kernel * l.output.elements();
    l.flops_backward = static_cast<double>(l.output.elements());
    l.output_bytes = l.output.bytes();
    shape_ = l.output;
    return *this;
}

NetworkBuilder& NetworkBuilder::global_avg_pool(const std::string& name) {
    Layer& l = push(LayerKind::GlobalAvgPool, name, "gap");
    const std::int64_t c = shape_.dims.back();
    l.output = TensorShape{c};
    l.flops_forward = static_cast<double>(shape_.elements());
    l.flops_backward = static_cast<double>(shape_.elements());
    l.output_bytes = l.output.bytes();
    shape_ = l.output;
    return *this;
}

NetworkBuilder& NetworkBuilder::add(const std::string& name) {
    Layer& l = push(LayerKind::Add, name, "add");
    l.output = shape_;
    l.flops_forward = static_cast<double>(shape_.elements());
    l.flops_backward = static_cast<double>(shape_.elements());
    l.output_bytes = l.output.bytes();
    return *this;
}

NetworkBuilder& NetworkBuilder::scale(const std::string& name) {
    Layer& l = push(LayerKind::Scale, name, "scale");
    l.output = shape_;
    l.flops_forward = static_cast<double>(shape_.elements());
    l.flops_backward = static_cast<double>(shape_.elements());
    l.output_bytes = l.output.bytes();
    return *this;
}

NetworkBuilder& NetworkBuilder::embedding(std::int64_t vocab, int dim,
                                          const std::string& name) {
    if (shape_.rank() != 1) {
        throw InvalidArgumentError("embedding: input must be a token sequence");
    }
    Layer& l = push(LayerKind::Embedding, name, "embed");
    const std::int64_t len = shape_.dims[0];
    l.output = TensorShape{len, dim};
    l.params = vocab * dim;
    l.flops_forward = 0.0;  // gather, memory bound
    // Sparse gradient scatter-add.
    l.flops_backward = static_cast<double>(len) * dim;
    l.weight_bytes = 4.0 * static_cast<double>(l.params);
    l.output_bytes = l.output.bytes();
    shape_ = l.output;
    return *this;
}

NetworkBuilder& NetworkBuilder::softmax(const std::string& name) {
    Layer& l = push(LayerKind::Softmax, name, "softmax");
    l.output = shape_;
    l.flops_forward = 5.0 * static_cast<double>(shape_.elements());
    l.flops_backward = 3.0 * static_cast<double>(shape_.elements());
    l.output_bytes = l.output.bytes();
    return *this;
}

NetworkBuilder& NetworkBuilder::flatten(const std::string& name) {
    Layer& l = push(LayerKind::Flatten, name, "flatten");
    l.output = TensorShape{shape_.elements()};
    l.output_bytes = l.output.bytes();
    shape_ = l.output;
    return *this;
}

NetworkBuilder& NetworkBuilder::dropout(const std::string& name) {
    Layer& l = push(LayerKind::Dropout, name, "dropout");
    l.output = shape_;
    l.flops_forward = 2.0 * static_cast<double>(shape_.elements());
    l.flops_backward = static_cast<double>(shape_.elements());
    l.output_bytes = l.output.bytes();
    return *this;
}

NetworkBuilder& NetworkBuilder::branch(const TensorShape& at) {
    shape_ = at;
    return *this;
}

NetworkModel NetworkBuilder::build() && { return std::move(model_); }

}  // namespace extradeep::dnn
