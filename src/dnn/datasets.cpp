#include "dnn/datasets.hpp"

#include "common/error.hpp"
#include "dnn/zoo.hpp"

namespace extradeep::dnn {

DatasetSpec DatasetSpec::cifar10() {
    DatasetSpec d;
    d.name = "CIFAR-10";
    d.train_samples = 50000;
    d.val_samples = 10000;
    d.sample_shape = TensorShape{32, 32, 3};
    d.bytes_per_sample = 32 * 32 * 3 + 1;
    d.num_classes = 10;
    return d;
}

DatasetSpec DatasetSpec::cifar100() {
    DatasetSpec d = cifar10();
    d.name = "CIFAR-100";
    d.num_classes = 100;
    d.bytes_per_sample = 32 * 32 * 3 + 2;
    return d;
}

DatasetSpec DatasetSpec::imagenet() {
    DatasetSpec d;
    d.name = "ImageNet";
    d.train_samples = 1281167;
    d.val_samples = 50000;
    d.sample_shape = TensorShape{224, 224, 3};
    // Average JPEG size in ILSVRC-2012 is ~110 KB.
    d.bytes_per_sample = 110.0 * 1024.0;
    d.num_classes = 1000;
    return d;
}

DatasetSpec DatasetSpec::imdb() {
    DatasetSpec d;
    d.name = "IMDB";
    // The paper cites 50 000 samples total; the standard split is 25k/25k.
    d.train_samples = 25000;
    d.val_samples = 25000;
    d.sample_shape = TensorShape{128};  // truncated/padded token sequence
    d.bytes_per_sample = 128 * 4;
    d.num_classes = 2;
    return d;
}

DatasetSpec DatasetSpec::speech_commands() {
    DatasetSpec d;
    d.name = "Speech Commands";
    d.train_samples = 84843;
    d.val_samples = 9981;
    // 1 s of 16 kHz audio converted to a 64x64 log-mel spectrogram.
    d.sample_shape = TensorShape{64, 64, 1};
    d.bytes_per_sample = 16000 * 2;  // 16-bit PCM on disk
    d.num_classes = 35;
    return d;
}

std::vector<DatasetSpec> DatasetSpec::all() {
    return {cifar10(), cifar100(), imagenet(), imdb(), speech_commands()};
}

DatasetSpec dataset_spec(const std::string& dataset_name) {
    for (auto& d : DatasetSpec::all()) {
        if (d.name == dataset_name) {
            return d;
        }
    }
    throw InvalidArgumentError("dataset_spec: unknown dataset '" +
                               dataset_name + "'");
}

BenchmarkApp make_benchmark(const std::string& dataset_name) {
    if (dataset_name == "CIFAR-10") {
        DatasetSpec d = DatasetSpec::cifar10();
        NetworkModel n = resnet50(d.sample_shape, d.num_classes);
        return BenchmarkApp{std::move(d), std::move(n)};
    }
    if (dataset_name == "CIFAR-100") {
        DatasetSpec d = DatasetSpec::cifar100();
        NetworkModel n = resnet50(d.sample_shape, d.num_classes);
        return BenchmarkApp{std::move(d), std::move(n)};
    }
    if (dataset_name == "ImageNet") {
        DatasetSpec d = DatasetSpec::imagenet();
        NetworkModel n = efficientnet_b0(d.sample_shape, d.num_classes);
        return BenchmarkApp{std::move(d), std::move(n)};
    }
    if (dataset_name == "IMDB") {
        DatasetSpec d = DatasetSpec::imdb();
        NetworkModel n = nnlm(static_cast<int>(d.sample_shape.dims[0]), 20000,
                              d.num_classes);
        return BenchmarkApp{std::move(d), std::move(n)};
    }
    if (dataset_name == "Speech Commands") {
        DatasetSpec d = DatasetSpec::speech_commands();
        NetworkModel n = cnn10(d.sample_shape, d.num_classes);
        return BenchmarkApp{std::move(d), std::move(n)};
    }
    throw InvalidArgumentError("make_benchmark: unknown dataset '" +
                               dataset_name + "'");
}

std::vector<std::string> benchmark_names() {
    return {"CIFAR-10", "CIFAR-100", "ImageNet", "IMDB", "Speech Commands"};
}

}  // namespace extradeep::dnn
