#include "dnn/layer.hpp"

#include "common/error.hpp"

namespace extradeep::dnn {

std::string_view layer_kind_name(LayerKind kind) {
    switch (kind) {
        case LayerKind::Conv2d: return "Conv2d";
        case LayerKind::DepthwiseConv2d: return "DepthwiseConv2d";
        case LayerKind::Dense: return "Dense";
        case LayerKind::BatchNorm: return "BatchNorm";
        case LayerKind::Activation: return "Activation";
        case LayerKind::MaxPool: return "MaxPool";
        case LayerKind::AvgPool: return "AvgPool";
        case LayerKind::GlobalAvgPool: return "GlobalAvgPool";
        case LayerKind::Add: return "Add";
        case LayerKind::Scale: return "Scale";
        case LayerKind::Embedding: return "Embedding";
        case LayerKind::Softmax: return "Softmax";
        case LayerKind::Flatten: return "Flatten";
        case LayerKind::Dropout: return "Dropout";
    }
    throw InvalidArgumentError("layer_kind_name: unknown kind");
}

bool Layer::uses_cudnn() const {
    switch (kind) {
        case LayerKind::Conv2d:
        case LayerKind::DepthwiseConv2d:
        case LayerKind::BatchNorm:
        case LayerKind::MaxPool:
        case LayerKind::AvgPool:
        case LayerKind::Softmax:
            return true;
        default:
            return false;
    }
}

bool Layer::uses_cublas() const { return kind == LayerKind::Dense; }

}  // namespace extradeep::dnn
