#include "dnn/zoo.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace extradeep::dnn {

namespace {

/// One ResNet bottleneck block: 1x1 reduce, 3x3 spatial, 1x1 expand, with a
/// projection shortcut when the shape changes.
void bottleneck(NetworkBuilder& b, int mid, int out, int stride,
                const std::string& prefix) {
    const TensorShape block_input = b.mark();
    const bool project = stride != 1 || block_input.dims[2] != out;

    b.conv2d(mid, 1, 1, prefix + "_conv1");
    b.batch_norm(prefix + "_bn1");
    b.activation("relu", prefix + "_relu1");
    b.conv2d(mid, 3, stride, prefix + "_conv2");
    b.batch_norm(prefix + "_bn2");
    b.activation("relu", prefix + "_relu2");
    b.conv2d(out, 1, 1, prefix + "_conv3");
    b.batch_norm(prefix + "_bn3");

    if (project) {
        const TensorShape main_out = b.mark();
        b.branch(block_input);
        b.conv2d(out, 1, stride, prefix + "_downsample");
        b.batch_norm(prefix + "_downsample_bn");
        if (b.current_shape() != main_out) {
            throw InvalidArgumentError("bottleneck: shortcut shape mismatch");
        }
    }
    b.add(prefix + "_add");
    b.activation("relu", prefix + "_relu3");
}

/// One EfficientNet MBConv block with squeeze-excitation.
void mbconv(NetworkBuilder& b, int expand, int kernel, int out, int stride,
            const std::string& prefix) {
    const TensorShape block_input = b.mark();
    const int in_ch = static_cast<int>(block_input.dims[2]);
    const int expanded = in_ch * expand;
    const bool residual = stride == 1 && in_ch == out;

    if (expand != 1) {
        b.conv2d(expanded, 1, 1, prefix + "_expand");
        b.batch_norm(prefix + "_expand_bn");
        b.activation("swish", prefix + "_expand_swish");
    }
    b.depthwise_conv2d(kernel, stride, prefix + "_dw");
    b.batch_norm(prefix + "_dw_bn");
    b.activation("swish", prefix + "_dw_swish");

    // Squeeze-excitation: squeeze to a vector, two dense layers, sigmoid
    // gate, channelwise rescale of the depthwise output.
    const TensorShape dw_out = b.mark();
    const int se_dim = std::max(1, in_ch / 4);
    b.global_avg_pool(prefix + "_se_squeeze");
    b.dense(se_dim, prefix + "_se_reduce");
    b.activation("swish", prefix + "_se_swish");
    b.dense(expanded, prefix + "_se_expand");
    b.activation("sigmoid", prefix + "_se_sigmoid");
    b.branch(dw_out);
    b.scale(prefix + "_se_scale");

    b.conv2d(out, 1, 1, prefix + "_project");
    b.batch_norm(prefix + "_project_bn");
    if (residual) {
        b.add(prefix + "_add");
    }
}

}  // namespace

NetworkModel resnet50(TensorShape input, int num_classes) {
    if (input.rank() != 3) {
        throw InvalidArgumentError("resnet50: input must be HWC");
    }
    NetworkBuilder b("ResNet-50", std::move(input));
    b.conv2d(64, 7, 2, "stem_conv");
    b.batch_norm("stem_bn");
    b.activation("relu", "stem_relu");
    b.max_pool(3, 2, "stem_pool");

    struct Stage {
        int mid, out, blocks, stride;
    };
    const Stage stages[] = {
        {64, 256, 3, 1}, {128, 512, 4, 2}, {256, 1024, 6, 2}, {512, 2048, 3, 2}};
    int stage_idx = 0;
    for (const auto& st : stages) {
        ++stage_idx;
        for (int blk = 0; blk < st.blocks; ++blk) {
            const int stride = blk == 0 ? st.stride : 1;
            bottleneck(b, st.mid, st.out, stride,
                       "stage" + std::to_string(stage_idx) + "_block" +
                           std::to_string(blk + 1));
        }
    }
    b.global_avg_pool("avgpool");
    b.dense(num_classes, "fc");
    b.softmax("softmax");
    return std::move(b).build();
}

NetworkModel efficientnet_b0(TensorShape input, int num_classes) {
    if (input.rank() != 3) {
        throw InvalidArgumentError("efficientnet_b0: input must be HWC");
    }
    NetworkBuilder b("EfficientNet-B0", std::move(input));
    b.conv2d(32, 3, 2, "stem_conv");
    b.batch_norm("stem_bn");
    b.activation("swish", "stem_swish");

    struct BlockCfg {
        int expand, kernel, out, stride, repeats;
    };
    const BlockCfg cfg[] = {{1, 3, 16, 1, 1},  {6, 3, 24, 2, 2},
                            {6, 5, 40, 2, 2},  {6, 3, 80, 2, 3},
                            {6, 5, 112, 1, 3}, {6, 5, 192, 2, 4},
                            {6, 3, 320, 1, 1}};
    int block_idx = 0;
    for (const auto& c : cfg) {
        for (int r = 0; r < c.repeats; ++r) {
            ++block_idx;
            const int stride = r == 0 ? c.stride : 1;
            mbconv(b, c.expand, c.kernel, c.out, stride,
                   "mbconv" + std::to_string(block_idx));
        }
    }
    b.conv2d(1280, 1, 1, "head_conv");
    b.batch_norm("head_bn");
    b.activation("swish", "head_swish");
    b.global_avg_pool("head_pool");
    b.dropout("head_dropout");
    b.dense(num_classes, "fc");
    b.softmax("softmax");
    return std::move(b).build();
}

NetworkModel cnn10(TensorShape input, int num_classes) {
    if (input.rank() != 3) {
        throw InvalidArgumentError("cnn10: input must be HWC");
    }
    NetworkBuilder b("CNN-10", std::move(input));
    const int channels[] = {32, 32, 64, 64, 128, 128, 256, 256};
    for (int i = 0; i < 8; ++i) {
        const int stride = (i % 2 == 1) ? 2 : 1;  // halve resolution per pair
        b.conv2d(channels[i], 3, stride, "conv" + std::to_string(i + 1));
        b.batch_norm("bn" + std::to_string(i + 1));
        b.activation("relu", "relu" + std::to_string(i + 1));
    }
    b.flatten("flatten");
    b.dense(512, "dense1");
    b.activation("relu", "dense1_relu");
    b.dropout("dropout1");
    b.dense(128, "dense2");
    b.activation("relu", "dense2_relu");
    b.dense(num_classes, "fc");
    b.softmax("softmax");
    return std::move(b).build();
}

NetworkModel nnlm(int sequence_length, std::int64_t vocab_size,
                  int num_classes) {
    NetworkBuilder b("NNLM", TensorShape{sequence_length});
    b.embedding(vocab_size, 128, "embedding");
    b.global_avg_pool("avg_pool");
    b.dense(64, "dense1");
    b.activation("relu", "dense1_relu");
    b.dropout("dropout");
    b.dense(16, "dense2");
    b.activation("relu", "dense2_relu");
    b.dense(num_classes, "fc");
    b.softmax("softmax");
    return std::move(b).build();
}

}  // namespace extradeep::dnn
