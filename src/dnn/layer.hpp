#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dnn/shape.hpp"

namespace extradeep::dnn {

/// The layer vocabulary the cost model understands. Each kind maps to a
/// distinct family of GPU kernels in the simulator (cuDNN convolutions,
/// cuBLAS GEMMs, Eigen elementwise kernels, ...).
enum class LayerKind {
    Conv2d,
    DepthwiseConv2d,
    Dense,
    BatchNorm,
    Activation,   ///< ReLU / swish / sigmoid — elementwise
    MaxPool,
    AvgPool,
    GlobalAvgPool,
    Add,          ///< residual addition
    Scale,        ///< channelwise scale (squeeze-excite apply)
    Embedding,
    Softmax,
    Flatten,
    Dropout,
};

std::string_view layer_kind_name(LayerKind kind);

/// One layer of a network with its fully-derived per-sample cost numbers.
/// All FLOPs/bytes are *per sample*; the simulator multiplies by the batch
/// size per rank.
struct Layer {
    std::string name;
    LayerKind kind = LayerKind::Conv2d;
    TensorShape input;
    TensorShape output;
    int kernel_size = 0;           ///< spatial kernel size (conv/pool), else 0
    std::int64_t params = 0;       ///< trainable parameter count
    double flops_forward = 0.0;    ///< per-sample forward FLOPs
    double flops_backward = 0.0;   ///< per-sample backward FLOPs (dgrad+wgrad)
    double weight_bytes = 0.0;     ///< fp32 bytes of the trainable parameters
    double output_bytes = 0.0;     ///< fp32 bytes of the output activation

    /// True for layers whose forward pass is executed through cuDNN
    /// (convolutions, pooling, batch norm, softmax).
    bool uses_cudnn() const;
    /// True for layers whose forward pass is a cuBLAS GEMM (dense layers).
    bool uses_cublas() const;
};

}  // namespace extradeep::dnn
