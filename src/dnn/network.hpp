#pragma once

#include <string>
#include <vector>

#include "dnn/layer.hpp"
#include "dnn/shape.hpp"

namespace extradeep::dnn {

/// A complete network as a linear sequence of cost-annotated layers. The
/// simulator does not need the DAG structure (residual branches are encoded
/// as Add layers whose cost covers the merge), only per-layer costs and
/// boundary activation sizes.
struct NetworkModel {
    std::string name;
    TensorShape input;
    std::vector<Layer> layers;

    /// Total trainable parameters.
    std::int64_t total_params() const;
    /// Total fp32 bytes of the gradient exchanged per step (== weight bytes).
    double gradient_bytes() const;
    /// Per-sample forward / backward FLOPs of the full network.
    double flops_forward() const;
    double flops_backward() const;
    /// Per-sample bytes of all intermediate activations.
    double activation_bytes() const;

    /// Splits the layer list into `stages` contiguous stages with roughly
    /// balanced forward FLOPs (used by pipeline parallelism). Returns the
    /// exclusive end-index of each stage. Throws if stages > layer count.
    std::vector<std::size_t> balanced_stage_bounds(int stages) const;
};

/// Incremental builder that tracks the current tensor shape and derives each
/// layer's FLOPs/params. Convolution FLOPs use the 2*K*K*Cin*Cout*Hout*Wout
/// multiply-add convention; backward cost is the standard ~2x forward
/// (data-gradient + weight-gradient).
class NetworkBuilder {
public:
    NetworkBuilder(std::string network_name, TensorShape input);

    /// 2D convolution, 'same'-style padding: output spatial size is
    /// ceil(size / stride). No bias (ResNet/EfficientNet convention).
    NetworkBuilder& conv2d(int out_channels, int kernel, int stride,
                           const std::string& name = "");
    /// Depthwise 2D convolution (channel multiplier 1).
    NetworkBuilder& depthwise_conv2d(int kernel, int stride,
                                     const std::string& name = "");
    /// Fully connected layer with bias; flattens the input if needed.
    NetworkBuilder& dense(int units, const std::string& name = "");
    NetworkBuilder& batch_norm(const std::string& name = "");
    NetworkBuilder& activation(const std::string& act = "relu",
                               const std::string& name = "");
    NetworkBuilder& max_pool(int kernel, int stride, const std::string& name = "");
    NetworkBuilder& avg_pool(int kernel, int stride, const std::string& name = "");
    NetworkBuilder& global_avg_pool(const std::string& name = "");
    /// Residual addition with a branch whose output has the current shape.
    NetworkBuilder& add(const std::string& name = "");
    /// Channelwise scaling (squeeze-excite application).
    NetworkBuilder& scale(const std::string& name = "");
    /// Token embedding lookup: input must be (length); output (length, dim).
    NetworkBuilder& embedding(std::int64_t vocab, int dim,
                              const std::string& name = "");
    NetworkBuilder& softmax(const std::string& name = "");
    NetworkBuilder& flatten(const std::string& name = "");
    NetworkBuilder& dropout(const std::string& name = "");

    const TensorShape& current_shape() const { return shape_; }

    /// Saves the current shape cursor so a parallel branch (e.g. a residual
    /// shortcut) can be emitted later with branch(); the merge itself is
    /// expressed by a following add()/scale().
    TensorShape mark() const { return shape_; }
    /// Rewinds the shape cursor to a previously saved branch point. The
    /// layers emitted afterwards are costed against that shape.
    NetworkBuilder& branch(const TensorShape& at);

    NetworkModel build() &&;

private:
    Layer& push(LayerKind kind, const std::string& name,
                const std::string& auto_prefix);

    NetworkModel model_;
    TensorShape shape_;
    int auto_index_ = 0;
};

}  // namespace extradeep::dnn
