#include "aggregation/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "trace/timeline.hpp"

namespace extradeep::aggregation {

namespace {

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

void drop(RunVerdict& verdict, std::string reason, int rank = -1) {
    verdict.keep = false;
    verdict.diagnostics.add(Severity::Error, std::move(reason), -1, rank);
}

/// Checks one rank's events for metric sanity; returns false (and explains)
/// on the first violation.
bool validate_events(const trace::RankTrace& rank, RunVerdict& verdict) {
    for (const auto& e : rank.events) {
        if (!finite_nonneg(e.start) || !finite_nonneg(e.duration) ||
            !finite_nonneg(e.bytes) || e.visits < 0) {
            drop(verdict,
                 "validate_run: event '" + e.name +
                     "' has a non-finite or negative metric value",
                 rank.rank);
            return false;
        }
    }
    for (const auto& m : rank.marks) {
        if (!finite_nonneg(m.time) || m.epoch < 0 || m.step < -1) {
            drop(verdict, "validate_run: mark with invalid epoch/step/time",
                 rank.rank);
            return false;
        }
    }
    return true;
}

/// Checks mark pairing (via segment_steps) and per-(epoch, kind) strictly
/// increasing step indices; counts complete step windows.
bool validate_steps(const trace::RankTrace& rank, RunVerdict& verdict,
                    int* step_windows) {
    std::vector<trace::StepWindow> windows;
    try {
        windows = trace::segment_steps(rank);
    } catch (const ParseError& e) {
        drop(verdict, std::string("validate_run: ") + e.what(), rank.rank);
        return false;
    }
    // Key: (epoch, kind); step indices must be strictly increasing in time
    // order, which also rules out duplicated (epoch, step, kind) windows
    // that would silently collapse into one aggregation slot.
    std::map<std::pair<int, int>, int> last_step;
    int complete = 0;
    for (const auto& w : windows) {
        if (w.async_gap) continue;
        ++complete;
        const auto key = std::make_pair(
            w.epoch, w.kind == trace::StepKind::Train ? 0 : 1);
        const auto it = last_step.find(key);
        if (it != last_step.end() && w.step <= it->second) {
            std::ostringstream os;
            os << "validate_run: non-monotonic step index " << w.step
               << " after " << it->second << " in epoch " << w.epoch;
            drop(verdict, os.str(), rank.rank);
            return false;
        }
        last_step[key] = w.step;
    }
    *step_windows += complete;
    return true;
}

}  // namespace

RunVerdict validate_run(const profiling::ProfiledRun& run,
                        const RunValidationOptions& options) {
    RunVerdict verdict;

    if (run.params.empty()) {
        drop(verdict, "validate_run: run has no execution parameters");
    }
    for (const auto& [key, value] : run.params) {
        if (!std::isfinite(value)) {
            drop(verdict,
                 "validate_run: non-finite value for parameter '" + key + "'");
        }
    }
    if (!finite_nonneg(run.profiling_wall_time)) {
        drop(verdict, "validate_run: non-finite or negative wall time");
    }
    if (run.ranks.empty()) {
        drop(verdict, "validate_run: run has no ranks");
        return verdict;
    }
    if (options.expected_ranks >= 0 &&
        static_cast<int>(run.ranks.size()) != options.expected_ranks) {
        std::ostringstream os;
        os << "validate_run: incomplete run: " << run.ranks.size()
           << " ranks, expected " << options.expected_ranks;
        drop(verdict, os.str());
    }

    std::set<int> rank_ids;
    int step_windows = 0;
    for (const auto& rank : run.ranks) {
        if (rank.rank < 0) {
            drop(verdict, "validate_run: negative rank id", rank.rank);
            continue;
        }
        if (!rank_ids.insert(rank.rank).second) {
            drop(verdict, "validate_run: duplicate rank id", rank.rank);
            continue;
        }
        if (!validate_events(rank, verdict)) {
            continue;
        }
        if (!validate_steps(rank, verdict, &step_windows)) {
            continue;
        }
    }
    if (verdict.keep && step_windows < options.min_step_windows) {
        std::ostringstream os;
        os << "validate_run: only " << step_windows
           << " complete step window(s), need " << options.min_step_windows;
        drop(verdict, os.str());
    }
    return verdict;
}

ExperimentVerdict validate_experiment(
    std::span<const std::vector<profiling::ProfiledRun>> configs,
    const ExperimentValidationOptions& options) {
    const obs::Span span{"validate.experiment"};
    // Per-run invariants, reduced to facts; the cross-run stage is shared
    // with the streaming ingestion path (which builds the facts itself).
    std::vector<std::vector<ValidatedRunFacts>> facts(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        facts[c].reserve(configs[c].size());
        for (const auto& run : configs[c]) {
            ValidatedRunFacts f;
            f.params = run.params;
            f.n_ranks = run.ranks.size();
            f.repetition = run.repetition;
            f.verdict = validate_run(run, options.run);
            facts[c].push_back(std::move(f));
        }
    }
    return validate_experiment_facts(facts, options);
}

ExperimentVerdict validate_experiment_facts(
    std::span<const std::vector<ValidatedRunFacts>> configs,
    const ExperimentValidationOptions& options) {
    ExperimentVerdict out;
    out.keep_run.reserve(configs.size());
    out.keep_config.reserve(configs.size());

    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto& runs = configs[c];
        const std::string ctx = "configuration " + std::to_string(c) + ": ";
        std::vector<bool> keep(runs.size(), true);

        // Per-run verdicts, scoped into the experiment log.
        for (std::size_t r = 0; r < runs.size(); ++r) {
            const RunVerdict& v = runs[r].verdict;
            for (const auto& d : v.diagnostics.entries()) {
                Diagnostic scoped = d;
                scoped.reason =
                    ctx + "repetition " + std::to_string(r) + ": " + d.reason;
                out.diagnostics.add(std::move(scoped));
            }
            keep[r] = v.keep;
        }

        // Params must be identical across the surviving repetitions (they
        // describe the same measurement point); deviants are dropped.
        const ValidatedRunFacts* reference = nullptr;
        for (std::size_t r = 0; r < runs.size(); ++r) {
            if (!keep[r]) continue;
            if (!reference) {
                reference = &runs[r];
            } else if (runs[r].params != reference->params) {
                keep[r] = false;
                out.diagnostics.add(
                    Severity::Error,
                    ctx + "repetition " + std::to_string(r) +
                        ": params differ from the other repetitions");
            }
        }

        // Rank completeness across repetitions: keep only runs with the
        // modal rank count.
        if (options.require_uniform_ranks) {
            std::map<std::size_t, int> freq;
            for (std::size_t r = 0; r < runs.size(); ++r) {
                if (keep[r]) ++freq[runs[r].n_ranks];
            }
            std::size_t modal = 0;
            int best = 0;
            for (const auto& [n_ranks, n] : freq) {
                if (n > best) {  // ties resolved toward the smaller count
                    best = n;
                    modal = n_ranks;
                }
            }
            for (std::size_t r = 0; r < runs.size(); ++r) {
                if (keep[r] && runs[r].n_ranks != modal) {
                    keep[r] = false;
                    std::ostringstream os;
                    os << ctx << "repetition " << r << ": "
                       << runs[r].n_ranks << " ranks, expected " << modal
                       << " like the other repetitions";
                    out.diagnostics.add(Severity::Error, os.str());
                }
            }
        }

        // Duplicate repetition indices do not bias the medians (repetitions
        // are aggregated by position), but indicate a collection problem.
        std::set<int> rep_ids;
        for (std::size_t r = 0; r < runs.size(); ++r) {
            if (keep[r] && !rep_ids.insert(runs[r].repetition).second) {
                out.diagnostics.add(Severity::Warning,
                                    ctx + "duplicate repetition index " +
                                        std::to_string(runs[r].repetition));
            }
        }

        const std::size_t kept =
            static_cast<std::size_t>(std::count(keep.begin(), keep.end(), true));
        bool config_ok = kept >= static_cast<std::size_t>(std::max(
                                     1, options.min_repetitions));
        if (!config_ok) {
            std::ostringstream os;
            os << ctx << "dropped: only " << kept << " of " << runs.size()
               << " repetition(s) usable, need "
               << std::max(1, options.min_repetitions);
            out.diagnostics.add(Severity::Error, os.str());
        }

        out.runs_kept += config_ok ? kept : 0;
        out.runs_dropped += runs.size() - (config_ok ? kept : 0);
        out.configs_kept += config_ok ? 1 : 0;
        out.configs_dropped += config_ok ? 0 : 1;
        out.keep_config.push_back(config_ok);
        if (!config_ok) {
            std::fill(keep.begin(), keep.end(), false);
        }
        out.keep_run.push_back(std::move(keep));
    }
    return out;
}

}  // namespace extradeep::aggregation
