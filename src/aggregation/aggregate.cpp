#include "aggregation/aggregate.hpp"

#include <algorithm>
#include <array>
#include <map>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "trace/timeline.hpp"

namespace extradeep::aggregation {

using trace::KernelCategory;
using trace::StepKind;

const KernelStats* ConfigurationData::find_kernel(
    const std::string& name) const {
    const auto it = std::lower_bound(
        kernels.begin(), kernels.end(), name,
        [](const KernelStats& k, const std::string& n) { return k.name < n; });
    if (it == kernels.end() || it->name != name) {
        return nullptr;
    }
    return &*it;
}

double ConfigurationData::phase_metric(trace::Phase phase, Metric metric,
                                       bool train) const {
    const int p = static_cast<int>(phase);
    const int m = static_cast<int>(metric);
    return train ? phase_train[p][m] : phase_val[p][m];
}

namespace {

/// Six aggregated values per kernel: {train, val} x {time, visits, bytes}.
using Value6 = std::array<double, 6>;

int value_index(bool train, int metric) { return (train ? 0 : 3) + metric; }

/// Fig. 2 steps (1)-(2) for one rank: per-step sums followed by the median
/// over steps. Returns per-kernel Value6 medians.
std::map<std::string, std::pair<KernelCategory, Value6>> aggregate_rank(
    const trace::RankTrace& rank_trace, int discard_warmup_epochs) {
    const auto windows = trace::segment_steps(rank_trace);

    // Assign each (epoch, step) a dense slot index per step kind; async-gap
    // windows share the slot of their preceding step.
    std::map<std::pair<int, int>, int> slots[2];
    for (const auto& w : windows) {
        if (w.epoch < discard_warmup_epochs || w.async_gap) {
            continue;
        }
        auto& m = slots[w.kind == StepKind::Train ? 0 : 1];
        m.emplace(std::make_pair(w.epoch, w.step),
                  static_cast<int>(m.size()));
    }
    const std::size_t n_slots[2] = {slots[0].size(), slots[1].size()};

    // Per-step sums v_nkr (Eq. 1), one slot vector per kernel and kind.
    struct Sums {
        KernelCategory category{};
        std::vector<std::array<double, 3>> per_slot[2];
    };
    std::map<std::string, Sums> sums;
    for (const auto& w : windows) {
        if (w.epoch < discard_warmup_epochs) {
            continue;
        }
        const int kind = w.kind == StepKind::Train ? 0 : 1;
        const auto slot_it = slots[kind].find({w.epoch, w.step});
        if (slot_it == slots[kind].end()) {
            continue;  // gap after a discarded step
        }
        const int slot = slot_it->second;
        for (const std::size_t idx : w.event_indices) {
            const trace::TraceEvent& e = rank_trace.events[idx];
            Sums& s = sums[e.name];
            s.category = e.category;
            auto& vec = s.per_slot[kind];
            if (vec.empty()) {
                vec.assign(n_slots[kind], {0.0, 0.0, 0.0});
            }
            vec[slot][0] += e.duration;
            vec[slot][1] += static_cast<double>(e.visits);
            vec[slot][2] += e.bytes;
        }
    }

    // Median over steps per kind and metric.
    std::map<std::string, std::pair<KernelCategory, Value6>> out;
    std::vector<double> column;
    for (const auto& [name, s] : sums) {
        Value6 v{};
        for (int kind = 0; kind < 2; ++kind) {
            if (s.per_slot[kind].empty() || n_slots[kind] == 0) {
                continue;
            }
            for (int metric = 0; metric < 3; ++metric) {
                column.clear();
                for (const auto& slot : s.per_slot[kind]) {
                    column.push_back(slot[metric]);
                }
                v[value_index(kind == 0, metric)] = stats::median(column);
            }
        }
        out.emplace(name, std::make_pair(s.category, v));
    }
    return out;
}

}  // namespace

ConfigurationData aggregate_runs(std::span<const profiling::ProfiledRun> runs,
                                 const AggregationOptions& options) {
    const obs::Span span{"aggregate.runs"};
    if (runs.empty()) {
        throw InvalidArgumentError("aggregate_runs: no runs");
    }
    for (const auto& run : runs) {
        if (run.params != runs.front().params) {
            throw InvalidArgumentError(
                "aggregate_runs: runs with mismatching measurement points");
        }
        if (run.ranks.empty()) {
            throw InvalidArgumentError("aggregate_runs: run without ranks");
        }
    }

    struct Rec {
        KernelCategory category{};
        std::vector<Value6> per_rep;  ///< indexed by repetition, zero padded
        int ranks_seen = 0;
        int reps_seen = 0;
    };
    std::map<std::string, Rec> agg;
    const std::size_t n_reps = runs.size();

    for (std::size_t rep = 0; rep < n_reps; ++rep) {
        const auto& run = runs[rep];
        const std::size_t n_ranks = run.ranks.size();

        // Fig. 2 steps (1)-(2) per rank, collected per kernel.
        struct RepRec {
            KernelCategory category{};
            std::vector<Value6> per_rank;  ///< zero padded to n_ranks later
            int ranks_present = 0;
        };
        std::map<std::string, RepRec> rep_map;
        for (const auto& rank_trace : run.ranks) {
            auto rank_vals =
                aggregate_rank(rank_trace, options.discard_warmup_epochs);
            for (auto& [name, cat_val] : rank_vals) {
                RepRec& r = rep_map[name];
                r.category = cat_val.first;
                r.per_rank.push_back(cat_val.second);
                ++r.ranks_present;
            }
        }

        // Median over ranks -> Ṽ_r (absent ranks count as zero).
        std::vector<double> column;
        for (auto& [name, r] : rep_map) {
            r.per_rank.resize(n_ranks, Value6{});
            Value6 v{};
            for (int i = 0; i < 6; ++i) {
                column.clear();
                for (const auto& pv : r.per_rank) {
                    column.push_back(pv[i]);
                }
                v[i] = stats::median(column);
            }
            Rec& rec = agg[name];
            rec.category = r.category;
            rec.per_rep.resize(n_reps, Value6{});
            rec.per_rep[rep] = v;
            rec.ranks_seen = std::max(rec.ranks_seen, r.ranks_present);
            ++rec.reps_seen;
        }
    }

    // Median over repetitions -> Ṽ (Fig. 2 step (3)).
    ConfigurationData out;
    out.params = runs.front().params;
    out.repetitions = static_cast<int>(n_reps);
    out.kernels.reserve(agg.size());
    std::vector<double> column;
    for (auto& [name, rec] : agg) {
        rec.per_rep.resize(n_reps, Value6{});
        KernelStats ks;
        ks.name = name;
        ks.category = rec.category;
        ks.ranks_seen = rec.ranks_seen;
        ks.reps_seen = rec.reps_seen;
        for (int i = 0; i < 6; ++i) {
            column.clear();
            for (const auto& pv : rec.per_rep) {
                column.push_back(pv[i]);
            }
            const double med = stats::median(column);
            if (i < 3) {
                ks.train[i] = med;
            } else {
                ks.val[i - 3] = med;
            }
        }
        out.kernels.push_back(std::move(ks));
    }
    // std::map iteration is already name sorted; keep the invariant explicit.
    std::sort(out.kernels.begin(), out.kernels.end(),
              [](const KernelStats& a, const KernelStats& b) {
                  return a.name < b.name;
              });

    // Phase totals for application models (no kernel filtering here).
    for (const auto& k : out.kernels) {
        const int p = static_cast<int>(trace::phase_of(k.category));
        for (int m = 0; m < kMetricCount; ++m) {
            out.phase_train[p][m] += k.train[m];
            out.phase_val[p][m] += k.val[m];
        }
    }
    return out;
}

}  // namespace extradeep::aggregation
