#include "aggregation/aggregate.hpp"

#include <algorithm>

#include "aggregation/stream.hpp"
#include "common/error.hpp"
#include "obs/trace.hpp"
#include "trace/timeline.hpp"

namespace extradeep::aggregation {

const KernelStats* ConfigurationData::find_kernel(
    const std::string& name) const {
    const auto it = std::lower_bound(
        kernels.begin(), kernels.end(), name,
        [](const KernelStats& k, const std::string& n) { return k.name < n; });
    if (it == kernels.end() || it->name != name) {
        return nullptr;
    }
    return &*it;
}

double ConfigurationData::phase_metric(trace::Phase phase, Metric metric,
                                       bool train) const {
    const int p = static_cast<int>(phase);
    const int m = static_cast<int>(metric);
    return train ? phase_train[p][m] : phase_val[p][m];
}

ConfigurationData aggregate_runs(std::span<const profiling::ProfiledRun> runs,
                                 const AggregationOptions& options) {
    const obs::Span span{"aggregate.runs"};
    if (runs.empty()) {
        throw InvalidArgumentError("aggregate_runs: no runs");
    }
    // Precondition scan before any per-rank work, so a malformed later run
    // surfaces as the precondition error rather than a mid-aggregation
    // ParseError from an earlier run's marks.
    for (const auto& run : runs) {
        if (run.params != runs.front().params) {
            throw InvalidArgumentError(
                "aggregate_runs: runs with mismatching measurement points");
        }
        if (run.ranks.empty()) {
            throw InvalidArgumentError("aggregate_runs: run without ranks");
        }
    }

    // Fold through the incremental cores (aggregation/stream.hpp) — the same
    // code the streaming ingestion path runs, so both paths are bit-identical
    // by construction.
    ConfigAggregator agg;
    for (const auto& run : runs) {
        RunAggregator run_agg;
        for (const auto& rank_trace : run.ranks) {
            run_agg.add_rank(rank_trace, options.discard_warmup_epochs);
        }
        agg.add_run(run.params, run_agg.finish());
    }
    return agg.finish();
}

}  // namespace extradeep::aggregation
