#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "aggregation/metrics.hpp"
#include "profiling/profiler.hpp"
#include "trace/kernel.hpp"

namespace extradeep::aggregation {

/// Median per-step metric values of one kernel at one measurement point -
/// the Ṽ of Fig. 2 after steps (1)-(3), separately for training and
/// validation steps (Eq. 4 needs both).
struct KernelStats {
    std::string name;
    trace::KernelCategory category = trace::KernelCategory::CudaKernel;
    double train[kMetricCount] = {};  ///< Ṽ_t per metric
    double val[kMetricCount] = {};    ///< Ṽ_v per metric
    int ranks_seen = 0;  ///< ranks on which the kernel ever appeared
    int reps_seen = 0;   ///< repetitions in which the kernel ever appeared

    double train_metric(Metric m) const { return train[static_cast<int>(m)]; }
    double val_metric(Metric m) const { return val[static_cast<int>(m)]; }
};

/// The fully aggregated data of one measurement point ("Extra-Deep object",
/// app.x4 in Fig. 2): per-kernel medians plus per-phase (computation /
/// communication / memory) per-step totals for application models.
struct ConfigurationData {
    std::map<std::string, double> params;
    int repetitions = 0;
    std::vector<KernelStats> kernels;  ///< sorted by name
    double phase_train[trace::kPhaseCount][kMetricCount] = {};
    double phase_val[trace::kPhaseCount][kMetricCount] = {};

    /// Looks a kernel up by name; nullptr if absent.
    const KernelStats* find_kernel(const std::string& name) const;

    /// Per-step phase total, e.g. phase_metric(Phase::Communication,
    /// Metric::Time, StepKind::Train) == Ṽt_comm.
    double phase_metric(trace::Phase phase, Metric metric, bool train) const;
};

struct AggregationOptions {
    /// Leading warm-up epochs whose steps are excluded from aggregation
    /// (paper: "the first epoch acts as a warm-up round ... its measurements
    /// are not used for modeling").
    int discard_warmup_epochs = 1;
};

/// Runs Fig. 2 steps (1)-(3) over all repetitions of one measurement point:
///  (1) per-step sums v_nkr of each kernel's metric values (events falling
///      between two steps are credited to the preceding step, handling
///      asynchronously executed kernels),
///  (2) median over steps, then median over MPI ranks -> Ṽ_r,
///  (3) median over repetitions -> Ṽ,
/// then sums kernels by phase for the application models (step (4) skips
/// kernel filtering, which happens across configurations - see
/// ExperimentData). All runs must carry identical params; throws
/// InvalidArgumentError otherwise or on empty input.
ConfigurationData aggregate_runs(std::span<const profiling::ProfiledRun> runs,
                                 const AggregationOptions& options = {});

}  // namespace extradeep::aggregation
