#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "aggregation/aggregate.hpp"
#include "trace/timeline.hpp"

namespace extradeep::aggregation {

/// Incremental aggregation cores shared by aggregate_runs (materialising)
/// and the streaming ingestion path (src/extradeep/ingest). Both paths run
/// the exact same arithmetic in the exact same order — medians over
/// identical columns, map-ordered kernel iteration — so their outputs are
/// bit-identical by construction (asserted by tests/test_ingest_stream.cpp).
///
/// Memory behaviour: a RunAggregator holds O(kernels × ranks) reduced
/// values and a ConfigAggregator O(kernels × repetitions); neither retains
/// events, marks, or steps, which is what makes out-of-core ingestion's
/// footprint independent of trace size (DESIGN.md §13).

/// Six aggregated values per kernel: {train, val} × {time, visits, bytes}.
using KernelValues = std::array<double, 6>;

/// Index into KernelValues for (train?, metric).
inline int kernel_value_index(bool train, int metric) {
    return (train ? 0 : 3) + metric;
}

/// Per-kernel result of reducing one rank (Fig. 2 steps (1)-(2)).
struct RankKernelValues {
    trace::KernelCategory category{};
    KernelValues values{};
};

/// Fig. 2 steps (1)-(2) for one rank: per-step sums followed by the median
/// over steps. Throws ParseError (via segment_steps) if the rank's marks
/// are not properly nested/ordered.
std::map<std::string, RankKernelValues> aggregate_rank_trace(
    const trace::RankTrace& rank_trace, int discard_warmup_epochs);

/// Per-kernel result of reducing one run (median over ranks).
struct RunKernelAggregate {
    trace::KernelCategory category{};
    KernelValues values{};
    int ranks_present = 0;  ///< ranks on which the kernel appeared
};

/// Fully reduced single run: one KernelValues per kernel. This is all the
/// streaming ingest retains per repetition.
struct RunAggregate {
    std::map<std::string, RunKernelAggregate> kernels;
    std::size_t n_ranks = 0;
};

/// Folds one run's ranks as they arrive (Fig. 2 step (2): median over
/// ranks, absent ranks counting as zero). finish() consumes the state.
class RunAggregator {
public:
    /// Reduces `rank` (Fig. 2 (1)-(2)) and folds it in.
    void add_rank(const trace::RankTrace& rank_trace,
                  int discard_warmup_epochs);

    /// Folds in an already-reduced rank (for callers that computed
    /// aggregate_rank_trace themselves, e.g. to bound buffering).
    void add_rank_values(
        const std::map<std::string, RankKernelValues>& rank_values);

    std::size_t ranks() const { return n_ranks_; }

    /// Median over ranks. Call once; the aggregator is consumed.
    RunAggregate finish();

private:
    struct Slot {
        trace::KernelCategory category{};
        std::vector<KernelValues> per_rank;  ///< zero padded in finish()
        int ranks_present = 0;
    };
    std::map<std::string, Slot> kernels_;
    std::size_t n_ranks_ = 0;
};

/// Folds one configuration's repetitions as they arrive (Fig. 2 step (3):
/// median over repetitions) and assembles the final ConfigurationData.
/// Throws InvalidArgumentError with aggregate_runs' exact messages on
/// mismatching params / rank-less runs / zero runs, so both aggregation
/// paths fail identically.
class ConfigAggregator {
public:
    void add_run(const std::map<std::string, double>& params,
                 RunAggregate run);

    std::size_t runs() const { return n_reps_; }

    /// Median over repetitions, kernel sort, phase totals. Call once.
    ConfigurationData finish();

private:
    struct Rec {
        trace::KernelCategory category{};
        std::vector<KernelValues> per_rep;  ///< zero padded in finish()
        int ranks_seen = 0;
        int reps_seen = 0;
    };
    std::map<std::string, Rec> kernels_;
    std::map<std::string, double> params_;
    std::size_t n_reps_ = 0;
};

}  // namespace extradeep::aggregation
