#pragma once

#include <optional>
#include <string>
#include <vector>

#include "aggregation/aggregate.hpp"
#include "parallel/steps.hpp"

namespace extradeep::aggregation {

/// The minimum number of measurement points per parameter required for
/// modeling (paper Sec. 2.3: "we need at least five points to accurately
/// differentiate between logarithmic, linear, and polynomial complexity").
inline constexpr int kMinModelingPoints = 5;

/// All aggregated measurement points of one experiment, ordered by the
/// primary execution parameter (e.g. the number of MPI ranks x1). This is
/// the input to model creation.
class ExperimentData {
public:
    explicit ExperimentData(std::string primary_parameter = "x1");

    const std::string& primary_parameter() const { return primary_; }

    /// Adds one configuration; throws InvalidArgumentError if it lacks the
    /// primary parameter or duplicates an existing point.
    void add(ConfigurationData config);

    const std::vector<ConfigurationData>& configs() const { return configs_; }
    std::size_t size() const { return configs_.size(); }

    /// Primary-parameter values of all points, ascending.
    std::vector<double> parameter_values() const;

    /// Configuration at a primary-parameter value; nullptr if absent.
    const ConfigurationData* find(double value) const;

    /// Kernel filtering (Fig. 2 step (4)): the kernels that appear in at
    /// least `min_configs` configurations and are therefore modelable.
    /// Kernels seen in fewer configurations (e.g. scale-dependent collective
    /// algorithms, sporadic OS interruptions) are excluded.
    std::vector<std::string> modelable_kernels(
        int min_configs = kMinModelingPoints) const;

    /// Category of a kernel (first occurrence); throws if unknown.
    trace::KernelCategory kernel_category(const std::string& name) const;

private:
    std::string primary_;
    std::vector<ConfigurationData> configs_;
};

/// Eq. 4: the derived per-epoch metric value of a kernel,
/// F = n_t * Ṽ_t + n_v * Ṽ_v.
double derived_kernel_epoch_value(const KernelStats& kernel,
                                  const parallel::StepMath& steps,
                                  Metric metric);

/// Eqs. 8-10: per-epoch total of one phase (computation / communication /
/// memory operations).
double derived_phase_epoch_value(const ConfigurationData& config,
                                 trace::Phase phase,
                                 const parallel::StepMath& steps,
                                 Metric metric);

/// Eq. 6: per-epoch total over all three phases (e.g. the training time per
/// epoch when `metric` is Time).
double derived_epoch_total(const ConfigurationData& config,
                           const parallel::StepMath& steps, Metric metric);

}  // namespace extradeep::aggregation
