#include "aggregation/metrics.hpp"

#include "common/error.hpp"

namespace extradeep::aggregation {

std::string_view metric_name(Metric metric) {
    switch (metric) {
        case Metric::Time: return "time";
        case Metric::Visits: return "visits";
        case Metric::Bytes: return "bytes";
    }
    throw InvalidArgumentError("metric_name: unknown metric");
}

}  // namespace extradeep::aggregation
