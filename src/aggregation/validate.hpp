#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/diagnostics.hpp"
#include "profiling/profiler.hpp"

namespace extradeep::aggregation {

/// Semantic validation of profiled runs, between parsing and aggregation.
///
/// The EDP parser guarantees well-formed records and finite, non-negative
/// metric values; this pass checks the invariants a line-based parser cannot
/// see: NVTX mark pairing and nesting, monotonic step indices, duplicate
/// ranks, rank completeness across a run, and repetition completeness across
/// a configuration. Each run receives a keep/drop verdict that the ingestion
/// layer uses to degrade gracefully instead of aborting the experiment.

struct RunValidationOptions {
    /// Exact number of ranks the run must contain; -1 accepts any count >= 1.
    /// (Cross-run uniformity is checked by validate_experiment.)
    int expected_ranks = -1;
    /// Minimum number of complete (non-async) step windows summed over all
    /// ranks. A run without a single complete step contributes nothing to
    /// the medians and is dropped.
    int min_step_windows = 1;
};

/// Keep/drop verdict for one run. Error-severity diagnostics explain a
/// drop; warnings describe oddities that do not disqualify the run.
struct RunVerdict {
    bool keep = true;
    DiagnosticLog diagnostics;
};

/// Validates one profiled run:
///  - params present, with finite values,
///  - finite, non-negative wall time and event/mark metric values,
///  - at least one rank; rank ids unique and non-negative,
///  - expected_ranks (if set) matched exactly,
///  - every rank's marks segment into steps (pairing/nesting, via
///    trace::segment_steps) with strictly increasing step indices per
///    (epoch, step kind),
///  - at least min_step_windows complete steps across all ranks.
RunVerdict validate_run(const profiling::ProfiledRun& run,
                        const RunValidationOptions& options = {});

struct ExperimentValidationOptions {
    RunValidationOptions run;
    /// Configurations with fewer surviving repetitions are dropped whole.
    int min_repetitions = 1;
    /// Require every surviving run of a configuration to have the modal
    /// rank count of that configuration (rank completeness: a run that lost
    /// ranks would bias the median over ranks toward zero).
    bool require_uniform_ranks = true;
};

/// Verdicts for a whole experiment, shaped like the input: one keep flag
/// per run and per configuration.
struct ExperimentVerdict {
    std::vector<std::vector<bool>> keep_run;  ///< [config][repetition]
    std::vector<bool> keep_config;
    DiagnosticLog diagnostics;
    std::size_t runs_kept = 0;
    std::size_t runs_dropped = 0;
    std::size_t configs_kept = 0;
    std::size_t configs_dropped = 0;

    /// True if at least one configuration survived.
    bool any_usable() const { return configs_kept > 0; }
};

/// Validates every run of every configuration (one inner vector per
/// measurement point = the repetitions of that point), then applies the
/// cross-run invariants: identical params within a configuration, uniform
/// rank counts (optional), duplicate repetition indices (warning only), and
/// the min_repetitions floor per configuration.
ExperimentVerdict validate_experiment(
    std::span<const std::vector<profiling::ProfiledRun>> configs,
    const ExperimentValidationOptions& options = {});

/// Everything the cross-run stage of validate_experiment needs to know
/// about one run, decoupled from the run's bulk data (events/marks). The
/// streaming ingestion path validates each run at read time, keeps only
/// these facts, and discards the trace — so experiment validation produces
/// the identical diagnostic sequence without the runs in memory.
struct ValidatedRunFacts {
    std::map<std::string, double> params;
    std::size_t n_ranks = 0;
    int repetition = 0;
    RunVerdict verdict;  ///< validate_run outcome for this run
};

/// The cross-run stage of validate_experiment, operating on precomputed
/// per-run verdicts and facts. validate_experiment is implemented as
/// validate_run over every run followed by this function, so materialising
/// and streaming callers share one implementation (and one diagnostic
/// order).
ExperimentVerdict validate_experiment_facts(
    std::span<const std::vector<ValidatedRunFacts>> configs,
    const ExperimentValidationOptions& options = {});

}  // namespace extradeep::aggregation
