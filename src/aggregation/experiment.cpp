#include "aggregation/experiment.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace extradeep::aggregation {

ExperimentData::ExperimentData(std::string primary_parameter)
    : primary_(std::move(primary_parameter)) {}

void ExperimentData::add(ConfigurationData config) {
    const auto it = config.params.find(primary_);
    if (it == config.params.end()) {
        throw InvalidArgumentError("ExperimentData::add: configuration lacks "
                                   "primary parameter '" + primary_ + "'");
    }
    const double value = it->second;
    for (const auto& c : configs_) {
        if (c.params.at(primary_) == value) {
            throw InvalidArgumentError(
                "ExperimentData::add: duplicate measurement point");
        }
    }
    configs_.push_back(std::move(config));
    std::sort(configs_.begin(), configs_.end(),
              [&](const ConfigurationData& a, const ConfigurationData& b) {
                  return a.params.at(primary_) < b.params.at(primary_);
              });
}

std::vector<double> ExperimentData::parameter_values() const {
    std::vector<double> out;
    out.reserve(configs_.size());
    for (const auto& c : configs_) {
        out.push_back(c.params.at(primary_));
    }
    return out;
}

const ConfigurationData* ExperimentData::find(double value) const {
    for (const auto& c : configs_) {
        if (c.params.at(primary_) == value) {
            return &c;
        }
    }
    return nullptr;
}

std::vector<std::string> ExperimentData::modelable_kernels(
    int min_configs) const {
    std::map<std::string, int> seen;
    for (const auto& c : configs_) {
        for (const auto& k : c.kernels) {
            ++seen[k.name];
        }
    }
    std::vector<std::string> out;
    for (const auto& [name, count] : seen) {
        if (count >= min_configs) {
            out.push_back(name);
        }
    }
    return out;
}

trace::KernelCategory ExperimentData::kernel_category(
    const std::string& name) const {
    for (const auto& c : configs_) {
        if (const KernelStats* k = c.find_kernel(name)) {
            return k->category;
        }
    }
    throw InvalidArgumentError("kernel_category: unknown kernel '" + name + "'");
}

double derived_kernel_epoch_value(const KernelStats& kernel,
                                  const parallel::StepMath& steps,
                                  Metric metric) {
    return static_cast<double>(steps.train_steps) * kernel.train_metric(metric) +
           static_cast<double>(steps.val_steps) * kernel.val_metric(metric);
}

double derived_phase_epoch_value(const ConfigurationData& config,
                                 trace::Phase phase,
                                 const parallel::StepMath& steps,
                                 Metric metric) {
    return static_cast<double>(steps.train_steps) *
               config.phase_metric(phase, metric, true) +
           static_cast<double>(steps.val_steps) *
               config.phase_metric(phase, metric, false);
}

double derived_epoch_total(const ConfigurationData& config,
                           const parallel::StepMath& steps, Metric metric) {
    double total = 0.0;
    for (int p = 0; p < trace::kPhaseCount; ++p) {
        total += derived_phase_epoch_value(config, static_cast<trace::Phase>(p),
                                           steps, metric);
    }
    return total;
}

}  // namespace extradeep::aggregation
