#pragma once

#include <string_view>

namespace extradeep::aggregation {

/// The performance metrics Extra-Deep models (paper Sec. 2.1, step 2): the
/// runtime and the number of visits of every kernel, plus the number of
/// transferred bytes for memory/communication operations.
enum class Metric {
    Time,    ///< seconds
    Visits,  ///< execution count
    Bytes,   ///< transferred bytes
};

inline constexpr int kMetricCount = 3;

std::string_view metric_name(Metric metric);

}  // namespace extradeep::aggregation
