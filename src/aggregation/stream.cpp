#include "aggregation/stream.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace extradeep::aggregation {

using trace::KernelCategory;
using trace::StepKind;

std::map<std::string, RankKernelValues> aggregate_rank_trace(
    const trace::RankTrace& rank_trace, int discard_warmup_epochs) {
    const auto windows = trace::segment_steps(rank_trace);

    // Assign each (epoch, step) a dense slot index per step kind; async-gap
    // windows share the slot of their preceding step.
    std::map<std::pair<int, int>, int> slots[2];
    for (const auto& w : windows) {
        if (w.epoch < discard_warmup_epochs || w.async_gap) {
            continue;
        }
        auto& m = slots[w.kind == StepKind::Train ? 0 : 1];
        m.emplace(std::make_pair(w.epoch, w.step),
                  static_cast<int>(m.size()));
    }
    const std::size_t n_slots[2] = {slots[0].size(), slots[1].size()};

    // Per-step sums v_nkr (Eq. 1), one slot vector per kernel and kind.
    struct Sums {
        KernelCategory category{};
        std::vector<std::array<double, 3>> per_slot[2];
    };
    std::map<std::string, Sums> sums;
    for (const auto& w : windows) {
        if (w.epoch < discard_warmup_epochs) {
            continue;
        }
        const int kind = w.kind == StepKind::Train ? 0 : 1;
        const auto slot_it = slots[kind].find({w.epoch, w.step});
        if (slot_it == slots[kind].end()) {
            continue;  // gap after a discarded step
        }
        const int slot = slot_it->second;
        for (const std::size_t idx : w.event_indices) {
            const trace::TraceEvent& e = rank_trace.events[idx];
            Sums& s = sums[e.name];
            s.category = e.category;
            auto& vec = s.per_slot[kind];
            if (vec.empty()) {
                vec.assign(n_slots[kind], {0.0, 0.0, 0.0});
            }
            vec[slot][0] += e.duration;
            vec[slot][1] += static_cast<double>(e.visits);
            vec[slot][2] += e.bytes;
        }
    }

    // Median over steps per kind and metric.
    std::map<std::string, RankKernelValues> out;
    std::vector<double> column;
    for (const auto& [name, s] : sums) {
        KernelValues v{};
        for (int kind = 0; kind < 2; ++kind) {
            if (s.per_slot[kind].empty() || n_slots[kind] == 0) {
                continue;
            }
            for (int metric = 0; metric < 3; ++metric) {
                column.clear();
                for (const auto& slot : s.per_slot[kind]) {
                    column.push_back(slot[metric]);
                }
                v[kernel_value_index(kind == 0, metric)] =
                    stats::median(column);
            }
        }
        out.emplace(name, RankKernelValues{s.category, v});
    }
    return out;
}

void RunAggregator::add_rank(const trace::RankTrace& rank_trace,
                             int discard_warmup_epochs) {
    add_rank_values(aggregate_rank_trace(rank_trace, discard_warmup_epochs));
}

void RunAggregator::add_rank_values(
    const std::map<std::string, RankKernelValues>& rank_values) {
    ++n_ranks_;
    for (const auto& [name, rv] : rank_values) {
        Slot& s = kernels_[name];
        s.category = rv.category;
        s.per_rank.push_back(rv.values);
        ++s.ranks_present;
    }
}

RunAggregate RunAggregator::finish() {
    // Median over ranks -> Ṽ_r (absent ranks count as zero).
    RunAggregate out;
    out.n_ranks = n_ranks_;
    std::vector<double> column;
    for (auto& [name, s] : kernels_) {
        s.per_rank.resize(n_ranks_, KernelValues{});
        KernelValues v{};
        for (int i = 0; i < 6; ++i) {
            column.clear();
            for (const auto& pv : s.per_rank) {
                column.push_back(pv[i]);
            }
            v[i] = stats::median(column);
        }
        out.kernels.emplace(
            name, RunKernelAggregate{s.category, v, s.ranks_present});
    }
    kernels_.clear();
    return out;
}

void ConfigAggregator::add_run(const std::map<std::string, double>& params,
                               RunAggregate run) {
    if (n_reps_ == 0) {
        params_ = params;
    } else if (params != params_) {
        throw InvalidArgumentError(
            "aggregate_runs: runs with mismatching measurement points");
    }
    if (run.n_ranks == 0) {
        throw InvalidArgumentError("aggregate_runs: run without ranks");
    }
    const std::size_t rep = n_reps_++;
    for (auto& [name, k] : run.kernels) {
        Rec& rec = kernels_[name];
        rec.category = k.category;
        rec.per_rep.resize(n_reps_, KernelValues{});
        rec.per_rep[rep] = k.values;
        rec.ranks_seen = std::max(rec.ranks_seen, k.ranks_present);
        ++rec.reps_seen;
    }
}

ConfigurationData ConfigAggregator::finish() {
    if (n_reps_ == 0) {
        throw InvalidArgumentError("aggregate_runs: no runs");
    }
    // Median over repetitions -> Ṽ (Fig. 2 step (3)).
    ConfigurationData out;
    out.params = params_;
    out.repetitions = static_cast<int>(n_reps_);
    out.kernels.reserve(kernels_.size());
    std::vector<double> column;
    for (auto& [name, rec] : kernels_) {
        rec.per_rep.resize(n_reps_, KernelValues{});
        KernelStats ks;
        ks.name = name;
        ks.category = rec.category;
        ks.ranks_seen = rec.ranks_seen;
        ks.reps_seen = rec.reps_seen;
        for (int i = 0; i < 6; ++i) {
            column.clear();
            for (const auto& pv : rec.per_rep) {
                column.push_back(pv[i]);
            }
            const double med = stats::median(column);
            if (i < 3) {
                ks.train[i] = med;
            } else {
                ks.val[i - 3] = med;
            }
        }
        out.kernels.push_back(std::move(ks));
    }
    // std::map iteration is already name sorted; keep the invariant explicit.
    std::sort(out.kernels.begin(), out.kernels.end(),
              [](const KernelStats& a, const KernelStats& b) {
                  return a.name < b.name;
              });

    // Phase totals for application models (no kernel filtering here).
    for (const auto& k : out.kernels) {
        const int p = static_cast<int>(trace::phase_of(k.category));
        for (int m = 0; m < kMetricCount; ++m) {
            out.phase_train[p][m] += k.train[m];
            out.phase_val[p][m] += k.val[m];
        }
    }
    kernels_.clear();
    return out;
}

}  // namespace extradeep::aggregation
