#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "eval/oracle.hpp"

namespace extradeep::eval {

/// A backend the adaptive profiling planner (src/planner) pulls
/// measurements from. One measure() call stands for profiling ONE run (one
/// repetition of one candidate configuration) - the unit the planner's
/// budget counts. Implementations must be deterministic: the same (config,
/// repetition) pair always yields the same value, so plans are
/// bit-reproducible and independent of pull order.
class MeasurementSource {
public:
    virtual ~MeasurementSource() = default;

    /// Number of candidate configurations (arms).
    virtual std::size_t num_configs() const = 0;

    /// Parameter values of configuration `config` (one per parameter).
    virtual const std::vector<double>& point(std::size_t config) const = 0;

    /// Parameter names, in point() order.
    virtual const std::vector<std::string>& param_names() const = 0;

    /// Profiles repetition `repetition` of configuration `config` and
    /// returns the aggregated metric value (the oracle kernel's train-step
    /// time for the oracle backend). Throws on out-of-range config.
    virtual double measure(std::size_t config, int repetition) = 0;

    /// Budget cost of one measure() call at `config`, in profiled runs.
    /// The oracle backend charges 1 per run; a real cluster backend could
    /// charge by node-hours instead.
    virtual double run_cost(std::size_t config) const;
};

/// Reuses the eval oracle as a measurement backend: measure() materialises
/// one repetition with the same seeded noise streams the accuracy harness
/// uses (materialize_run), aggregates it, and returns the oracle kernel's
/// train-step time. Pulling repetitions 0..reps-1 of every configuration
/// therefore reproduces the fixed-grid harness data exactly - planner
/// savings are measured against an identical noise realisation, not a
/// luckier one.
class OracleMeasurementSource final : public MeasurementSource {
public:
    OracleMeasurementSource(OracleCase oracle, MaterializeOptions options);

    std::size_t num_configs() const override;
    const std::vector<double>& point(std::size_t config) const override;
    const std::vector<std::string>& param_names() const override;
    double measure(std::size_t config, int repetition) override;

    const OracleCase& oracle() const { return oracle_; }
    const MaterializeOptions& options() const { return options_; }

    /// Total measure() calls served - the proof-of-work counter the planner
    /// tests check against the reported budget.
    std::size_t runs_materialized() const { return runs_materialized_; }

private:
    OracleCase oracle_;
    MaterializeOptions options_;
    std::size_t runs_materialized_ = 0;
};

}  // namespace extradeep::eval
