// extradeep-eval: the ground-truth accuracy harness.
//
// Draws known PMNF functions (the synthetic oracle), materialises them into
// full profiled experiments with controlled multiplicative noise, round-trips
// them through the on-disk EDP format, and scores the complete pipeline -
// ingest -> validate -> aggregate -> ModelGenerator -> analysis - against the
// known ground truth. Emits a human table plus the machine-readable
// BENCH_eval.json records, and optionally enforces eval_thresholds.json
// (the `eval_accuracy_gate` ctest).
//
// Usage:
//   extradeep-eval                         # full suite
//   extradeep-eval --quick                 # gate subset (fast)
//   extradeep-eval --case linear --case log
//   extradeep-eval --noise 0,0.05 --seed 7
//   extradeep-eval --out BENCH_eval.json
//   extradeep-eval --thresholds eval_thresholds.json   # exit 1 on violation
//   extradeep-eval --list

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "eval/oracle.hpp"
#include "eval/report.hpp"
#include "eval/scorer.hpp"
#include "obs/session.hpp"
#include "profiling/edp_io.hpp"

using namespace extradeep;

namespace {

void usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--quick] [--case NAME]... [--noise S1,S2,...] [--seed N]\n"
        "          [--threads N] [--out FILE] [--thresholds FILE]\n"
        "          [--keep-files] [--list] [--trace SPEC]\n"
        "          [--validate-json FILE] [--validate-edp FILE]\n",
        argv0);
}

std::vector<double> parse_noise_list(const std::string& arg) {
    std::vector<double> out;
    std::size_t pos = 0;
    while (pos <= arg.size()) {
        const std::size_t comma = arg.find(',', pos);
        const std::string token =
            arg.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (token.empty()) {
            throw InvalidArgumentError("--noise: empty entry in '" + arg + "'");
        }
        std::size_t used = 0;
        const double v = std::stod(token, &used);
        if (used != token.size() || v < 0.0) {
            throw InvalidArgumentError("--noise: bad sigma '" + token + "'");
        }
        out.push_back(v);
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    return out;
}

/// Best-effort git revision for the BENCH_eval.json trajectory.
std::string git_revision() {
    std::string rev = "unknown";
    if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        if (std::fgets(buf, sizeof(buf), p) != nullptr) {
            std::string s(buf);
            while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
                s.pop_back();
            }
            if (!s.empty()) {
                rev = s;
            }
        }
        pclose(p);
    }
    return rev;
}

/// CI helper: parse FILE with the common JSON parser; exit 0 iff it is one
/// well-formed document. Lets scripts validate Chrome trace exports without
/// relying on an external JSON tool.
int validate_json_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const json::Value doc = json::parse(buffer.str(), path);
    const char* kind = doc.kind == json::Value::Kind::Object   ? "object"
                       : doc.kind == json::Value::Kind::Array  ? "array"
                       : doc.kind == json::Value::Kind::String ? "string"
                                                               : "scalar";
    std::printf("%s: valid JSON (top-level %s)\n", path.c_str(), kind);
    return 0;
}

/// CI helper: strict-parse FILE as an EDP profile (the self-profiling
/// round-trip check). Exit 0 iff it reads back cleanly.
int validate_edp_file(const std::string& path) {
    const profiling::ProfiledRun run = profiling::read_edp_file(path);
    std::size_t events = 0;
    for (const auto& rank : run.ranks) {
        events += rank.events.size();
    }
    std::string params;
    for (const auto& [name, value] : run.params) {
        params += (params.empty() ? "" : " ") + name + "=" +
                  std::to_string(value);
    }
    std::printf("%s: valid EDP (%zu rank(s), %zu event(s), params: %s)\n",
                path.c_str(), run.ranks.size(), events, params.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool list = false;
    bool keep_files = false;
    std::vector<std::string> only_cases;
    std::vector<double> noise_levels;
    std::string out_path;
    std::string thresholds_path;
    std::string trace_spec;
    bool trace_given = false;
    std::string validate_json_path;
    std::string validate_edp_path;
    eval::ScoreOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                throw InvalidArgumentError(std::string(flag) +
                                           " requires a value");
            }
            return argv[++i];
        };
        try {
            if (arg == "--quick") {
                quick = true;
            } else if (arg == "--list") {
                list = true;
            } else if (arg == "--keep-files") {
                keep_files = true;
            } else if (arg == "--case") {
                only_cases.push_back(next_value("--case"));
            } else if (arg == "--noise") {
                noise_levels = parse_noise_list(next_value("--noise"));
            } else if (arg == "--seed") {
                options.seed = std::stoull(next_value("--seed"));
            } else if (arg == "--threads") {
                options.fit_threads = std::stoi(next_value("--threads"));
            } else if (arg == "--out") {
                out_path = next_value("--out");
            } else if (arg == "--thresholds") {
                thresholds_path = next_value("--thresholds");
            } else if (arg == "--trace") {
                trace_spec = next_value("--trace");
                trace_given = true;
            } else if (arg == "--validate-json") {
                validate_json_path = next_value("--validate-json");
            } else if (arg == "--validate-edp") {
                validate_edp_path = next_value("--validate-edp");
            } else if (arg == "-h" || arg == "--help") {
                usage(argv[0]);
                return 0;
            } else {
                std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
                usage(argv[0]);
                return 2;
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }
    options.keep_files = keep_files;

    try {
        if (!validate_json_path.empty()) {
            return validate_json_file(validate_json_path);
        }
        if (!validate_edp_path.empty()) {
            return validate_edp_file(validate_edp_path);
        }

        obs::ObsConfig obs_config = trace_given
                                        ? obs::parse_obs_config(trace_spec)
                                        : obs::obs_config_from_env();
        const bool default_x1 =
            obs_config.params.find("x1") == obs_config.params.end();
        obs::ObsSession session(std::move(obs_config));
        if (session.config().enabled && default_x1) {
            session.set_param("x1", static_cast<double>(options.fit_threads));
        }

        std::vector<eval::OracleCase> cases =
            quick ? eval::quick_oracle_cases() : eval::default_oracle_cases();
        if (!only_cases.empty()) {
            std::vector<eval::OracleCase> filtered;
            for (auto& c : eval::default_oracle_cases()) {
                for (const auto& want : only_cases) {
                    if (c.name == want) {
                        filtered.push_back(std::move(c));
                        break;
                    }
                }
            }
            if (filtered.size() != only_cases.size()) {
                std::fprintf(stderr, "error: unknown case name in --case\n");
                return 2;
            }
            cases = std::move(filtered);
        }
        if (list) {
            for (const auto& c : cases) {
                std::printf("%-18s %zu params, %zu points: %s\n",
                            c.name.c_str(), c.num_params(), c.points.size(),
                            c.truth.to_string().c_str());
            }
            return 0;
        }
        if (noise_levels.empty()) {
            noise_levels = quick ? std::vector<double>{0.0, 0.05}
                                 : std::vector<double>{0.0, 0.02, 0.05, 0.10};
        }

        const std::vector<eval::CaseScore> scores =
            eval::score_suite(cases, noise_levels, options);
        std::printf("%s\n", eval::render_table(scores).c_str());
        for (const auto& s : scores) {
            if (!s.exact_recovery) {
                std::printf("note: %s @ noise %.3f fitted [%s], truth [%s]\n",
                            s.case_name.c_str(), s.noise, s.fitted_str.c_str(),
                            s.truth_str.c_str());
            }
        }

        const std::vector<eval::MetricRecord> records = eval::to_records(scores);
        if (!out_path.empty()) {
            std::ofstream out(out_path);
            if (!out) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             out_path.c_str());
                return 2;
            }
            out << eval::bench_json(records, git_revision());
            std::printf("wrote %zu records to %s\n", records.size(),
                        out_path.c_str());
        }

        if (!thresholds_path.empty()) {
            const auto thresholds =
                eval::load_thresholds_file(thresholds_path);
            const eval::GateResult gate =
                eval::check_gate(records, thresholds);
            std::printf("gate: %zu rules, %zu records matched\n",
                        gate.rules_checked, gate.records_matched);
            if (!gate.pass) {
                for (const auto& v : gate.violations) {
                    std::fprintf(stderr, "GATE VIOLATION: %s\n", v.c_str());
                }
                std::fprintf(stderr, "accuracy gate FAILED (%zu violations)\n",
                             gate.violations.size());
                return 1;
            }
            std::printf("accuracy gate passed\n");
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
