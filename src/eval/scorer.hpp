#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/oracle.hpp"
#include "modeling/fitter.hpp"
#include "obs/clock.hpp"

namespace extradeep::eval {

/// Options for scoring one oracle case end to end.
struct ScoreOptions {
    /// Total multiplicative noise sigma injected by the oracle.
    double noise = 0.0;
    std::uint64_t seed = 1;
    /// Directory for the round-trip EDP files; empty derives a unique
    /// directory under the system temp path. Removed afterwards unless
    /// keep_files is set.
    std::string work_dir;
    bool keep_files = false;
    /// Threads for the hypothesis search (FitOptions::num_threads).
    int fit_threads = 1;
    /// Confidence level of the scored prediction intervals.
    double confidence = 0.95;
    /// Fresh aggregated observations drawn per coverage point.
    int coverage_draws = 20;
    /// Time source for fit_seconds / hypotheses_per_sec (nullptr means the
    /// shared steady clock). Tests inject an obs::FakeClock to make timing
    /// fields deterministic.
    const obs::Clock* clock = nullptr;
};

/// All metrics of one (case, noise) evaluation. `extrap_error[i]` is the
/// percent error at 2^(i+1) times the largest modeling value of the primary
/// parameter (2x / 4x / 8x, the paper's extrapolation distances).
struct CaseScore {
    std::string case_name;
    double noise = 0.0;
    std::uint64_t seed = 1;

    /// 1 if the fitted model's dominant (poly, log) exponents match the
    /// ground truth in every parameter.
    bool exact_recovery = false;
    double smape_in_range = 0.0;    ///< fitted vs truth on a dense grid [%]
    double extrap_error[3] = {};    ///< percent error at 2x/4x/8x
    double pi_coverage = 0.0;       ///< fraction of held-out draws inside PI
    /// SMAPE of the analysis-layer cost model (Eq. 14) against the analytic
    /// truth cost; negative when not applicable (multi-parameter cases).
    double cost_smape = -1.0;

    double fit_seconds = 0.0;
    int hypotheses_searched = 0;
    double hypotheses_per_sec = 0.0;

    std::string truth_str;
    std::string fitted_str;
    std::string ingest_summary;
    std::size_t files_written = 0;
    std::size_t configs_kept = 0;
    std::size_t runs_kept = 0;
};

/// Truth-referenced accuracy of an already-fitted model: the deterministic
/// subset of CaseScore that needs no fresh observations. Shared by
/// score_case and the adaptive planner's report so "reaches the
/// eval-harness thresholds" means the same metric definitions in both
/// harnesses.
struct ModelAccuracy {
    /// Dominant (poly, log) exponents match the truth in every parameter.
    bool exact_recovery = false;
    double smape_in_range = 0.0;  ///< fitted vs truth on the dense grid [%]
    double extrap_error[3] = {};  ///< percent error at 2x/4x/8x
};

ModelAccuracy score_model(const OracleCase& oracle,
                          const modeling::PerformanceModel& fitted);

/// Scores one oracle case end to end: materialise -> write EDP files ->
/// ingest (parse + validate + aggregate) -> ModelGenerator -> analysis,
/// then compares the recovered model against the known truth. Throws Error
/// if the pipeline loses so much data that no model can be fitted - for an
/// oracle input that is itself a harness failure.
CaseScore score_case(const OracleCase& oracle, const ScoreOptions& options);

/// Scores a suite over several noise levels (cartesian product).
std::vector<CaseScore> score_suite(const std::vector<OracleCase>& cases,
                                   const std::vector<double>& noise_levels,
                                   const ScoreOptions& options);

}  // namespace extradeep::eval
