#include "eval/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/gate.hpp"
#include "common/json.hpp"
#include "common/table.hpp"

namespace extradeep::eval {

namespace {

void add_record(std::vector<MetricRecord>& out, const CaseScore& s,
                const std::string& metric, double value) {
    MetricRecord r;
    r.case_name = s.case_name;
    r.noise = s.noise;
    r.metric = metric;
    r.value = value;
    r.seed = s.seed;
    out.push_back(std::move(r));
}

}  // namespace

std::vector<MetricRecord> to_records(const CaseScore& s) {
    std::vector<MetricRecord> out;
    add_record(out, s, "exponent_recovery", s.exact_recovery ? 1.0 : 0.0);
    add_record(out, s, "smape_in_range", s.smape_in_range);
    add_record(out, s, "extrap_error_2x", s.extrap_error[0]);
    add_record(out, s, "extrap_error_4x", s.extrap_error[1]);
    add_record(out, s, "extrap_error_8x", s.extrap_error[2]);
    add_record(out, s, "pi_coverage", s.pi_coverage);
    if (s.cost_smape >= 0.0) {
        add_record(out, s, "cost_smape", s.cost_smape);
    }
    add_record(out, s, "fit_seconds", s.fit_seconds);
    add_record(out, s, "hypotheses_searched",
               static_cast<double>(s.hypotheses_searched));
    add_record(out, s, "hypotheses_per_sec", s.hypotheses_per_sec);
    return out;
}

std::vector<MetricRecord> to_records(const std::vector<CaseScore>& scores) {
    std::vector<MetricRecord> out;
    for (const auto& s : scores) {
        const auto records = to_records(s);
        out.insert(out.end(), records.begin(), records.end());
    }
    return out;
}

std::string render_table(const std::vector<CaseScore>& scores) {
    Table table({"case", "noise", "recovered", "SMAPE in-range", "err 2x",
                 "err 4x", "err 8x", "PI cover", "cost SMAPE", "hyp/s"});
    for (const auto& s : scores) {
        table.add_row({s.case_name, fmt::fixed(s.noise, 3),
                       s.exact_recovery ? "yes" : "NO",
                       fmt::percent(s.smape_in_range),
                       fmt::percent(s.extrap_error[0]),
                       fmt::percent(s.extrap_error[1]),
                       fmt::percent(s.extrap_error[2]),
                       fmt::fixed(s.pi_coverage, 2),
                       s.cost_smape >= 0.0 ? fmt::percent(s.cost_smape) : "-",
                       fmt::fixed(s.hypotheses_per_sec, 0)});
    }
    return table.to_string();
}

std::string bench_json(const std::vector<MetricRecord>& records,
                       const std::string& git_rev, const std::string& schema) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": " << json::quote(schema) << ",\n";
    os << "  \"git_rev\": " << json::quote(git_rev) << ",\n";
    os << "  \"records\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const MetricRecord& r = records[i];
        os << "    {\"case\": " << json::quote(r.case_name)
           << ", \"noise\": " << json::number(r.noise)
           << ", \"metric\": " << json::quote(r.metric)
           << ", \"value\": " << json::number(r.value)
           << ", \"seed\": " << r.seed << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::vector<Threshold> parse_thresholds(const std::string& json_text) {
    // Dialect and error-message prefix are the RuleDocSpec defaults; only the
    // field names differ between gate::Rule and the public Threshold struct.
    const std::vector<gate::Rule> rules =
        gate::parse_rules(json_text, gate::RuleDocSpec{});
    std::vector<Threshold> out;
    out.reserve(rules.size());
    for (const gate::Rule& rule : rules) {
        Threshold t;
        t.case_name = rule.scope;
        t.noise = rule.noise;
        t.metric = rule.metric;
        t.min = rule.min;
        t.max = rule.max;
        out.push_back(std::move(t));
    }
    return out;
}

std::vector<Threshold> load_thresholds_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error("load_thresholds_file: cannot open " + path);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return parse_thresholds(os.str());
}

GateResult check_gate(const std::vector<MetricRecord>& records,
                      const std::vector<Threshold>& thresholds) {
    std::vector<gate::Sample> samples;
    samples.reserve(records.size());
    for (const MetricRecord& r : records) {
        samples.push_back({r.case_name, r.noise, r.metric, r.value});
    }
    std::vector<gate::Rule> rules;
    rules.reserve(thresholds.size());
    for (const Threshold& t : thresholds) {
        rules.push_back({t.case_name, t.noise, t.metric, t.min, t.max});
    }
    const gate::Outcome outcome = gate::check_rules(samples, rules);

    GateResult result;
    result.pass = outcome.pass;
    result.rules_checked = outcome.rules_checked;
    result.records_matched = outcome.samples_matched;
    for (const gate::Violation& v : outcome.violations) {
        if (v.kind == gate::Violation::Kind::Unmatched) {
            const Threshold& t = thresholds[v.rule];
            result.violations.push_back(
                "threshold for metric '" + t.metric + "' (case " +
                t.case_name + ") matched no record - the gate would be "
                "silently disabled");
            continue;
        }
        const MetricRecord& r = records[v.sample];
        std::ostringstream where;
        where << r.case_name << " @ noise " << fmt::fixed(r.noise, 3) << ": "
              << r.metric << " = " << json::number(r.value);
        result.violations.push_back(
            where.str() +
            (v.kind == gate::Violation::Kind::BelowMin ? " < min " : " > max ") +
            json::number(v.bound));
    }
    return result;
}

}  // namespace extradeep::eval
