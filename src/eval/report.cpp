#include "eval/report.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/table.hpp"

namespace extradeep::eval {

namespace {

/// Locale-independent compact number rendering for JSON output.
std::string json_number(double v) {
    if (!std::isfinite(v)) {
        throw InvalidArgumentError("bench_json: non-finite metric value");
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

std::string json_string(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default: out += c;
        }
    }
    out += '"';
    return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for the thresholds file. Supports objects, arrays,
// strings (with the common escapes), numbers, booleans and null - enough for
// the gate schema while rejecting malformed documents loudly.

struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue* find(const std::string& key) const {
        for (const auto& [k, v] : object) {
            if (k == key) {
                return &v;
            }
        }
        return nullptr;
    }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JsonValue parse() {
        JsonValue v = value();
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing data after JSON document");
        }
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw ParseError("thresholds JSON: " + what + " at offset " +
                         std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        skip_ws();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue value() {
        const char c = peek();
        JsonValue v;
        if (c == '{') {
            ++pos_;
            v.kind = JsonValue::Kind::Object;
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                if (peek() != '"') {
                    fail("object key must be a string");
                }
                std::string key = parse_string();
                expect(':');
                v.object.emplace_back(std::move(key), value());
                const char next = peek();
                if (next == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            ++pos_;
            v.kind = JsonValue::Kind::Array;
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.array.push_back(value());
                const char next = peek();
                if (next == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::String;
            v.string = parse_string();
            return v;
        }
        if (consume_literal("true")) {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consume_literal("false")) {
            v.kind = JsonValue::Kind::Bool;
            return v;
        }
        if (consume_literal("null")) {
            return v;
        }
        // Number: parse with from_chars (locale independent).
        v.kind = JsonValue::Kind::Number;
        const char* begin = text_.data() + pos_;
        const char* end = text_.data() + text_.size();
        const auto [ptr, ec] = std::from_chars(begin, end, v.number);
        if (ec != std::errc{} || ptr == begin) {
            fail("invalid number");
        }
        pos_ += static_cast<std::size_t>(ptr - begin);
        return v;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    break;
                }
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    default: fail("unsupported string escape");
                }
                continue;
            }
            out += c;
        }
        fail("unterminated string");
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

void add_record(std::vector<MetricRecord>& out, const CaseScore& s,
                const std::string& metric, double value) {
    MetricRecord r;
    r.case_name = s.case_name;
    r.noise = s.noise;
    r.metric = metric;
    r.value = value;
    r.seed = s.seed;
    out.push_back(std::move(r));
}

}  // namespace

std::vector<MetricRecord> to_records(const CaseScore& s) {
    std::vector<MetricRecord> out;
    add_record(out, s, "exponent_recovery", s.exact_recovery ? 1.0 : 0.0);
    add_record(out, s, "smape_in_range", s.smape_in_range);
    add_record(out, s, "extrap_error_2x", s.extrap_error[0]);
    add_record(out, s, "extrap_error_4x", s.extrap_error[1]);
    add_record(out, s, "extrap_error_8x", s.extrap_error[2]);
    add_record(out, s, "pi_coverage", s.pi_coverage);
    if (s.cost_smape >= 0.0) {
        add_record(out, s, "cost_smape", s.cost_smape);
    }
    add_record(out, s, "fit_seconds", s.fit_seconds);
    add_record(out, s, "hypotheses_searched",
               static_cast<double>(s.hypotheses_searched));
    add_record(out, s, "hypotheses_per_sec", s.hypotheses_per_sec);
    return out;
}

std::vector<MetricRecord> to_records(const std::vector<CaseScore>& scores) {
    std::vector<MetricRecord> out;
    for (const auto& s : scores) {
        const auto records = to_records(s);
        out.insert(out.end(), records.begin(), records.end());
    }
    return out;
}

std::string render_table(const std::vector<CaseScore>& scores) {
    Table table({"case", "noise", "recovered", "SMAPE in-range", "err 2x",
                 "err 4x", "err 8x", "PI cover", "cost SMAPE", "hyp/s"});
    for (const auto& s : scores) {
        table.add_row({s.case_name, fmt::fixed(s.noise, 3),
                       s.exact_recovery ? "yes" : "NO",
                       fmt::percent(s.smape_in_range),
                       fmt::percent(s.extrap_error[0]),
                       fmt::percent(s.extrap_error[1]),
                       fmt::percent(s.extrap_error[2]),
                       fmt::fixed(s.pi_coverage, 2),
                       s.cost_smape >= 0.0 ? fmt::percent(s.cost_smape) : "-",
                       fmt::fixed(s.hypotheses_per_sec, 0)});
    }
    return table.to_string();
}

std::string bench_json(const std::vector<MetricRecord>& records,
                       const std::string& git_rev) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"extradeep-eval/1\",\n";
    os << "  \"git_rev\": " << json_string(git_rev) << ",\n";
    os << "  \"records\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const MetricRecord& r = records[i];
        os << "    {\"case\": " << json_string(r.case_name)
           << ", \"noise\": " << json_number(r.noise)
           << ", \"metric\": " << json_string(r.metric)
           << ", \"value\": " << json_number(r.value)
           << ", \"seed\": " << r.seed << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::vector<Threshold> parse_thresholds(const std::string& json_text) {
    JsonParser parser(json_text);
    const JsonValue doc = parser.parse();
    if (doc.kind != JsonValue::Kind::Object) {
        throw ParseError("thresholds JSON: top level must be an object");
    }
    const JsonValue* list = doc.find("thresholds");
    if (list == nullptr || list->kind != JsonValue::Kind::Array) {
        throw ParseError(
            "thresholds JSON: missing \"thresholds\" array");
    }
    std::vector<Threshold> out;
    out.reserve(list->array.size());
    for (const JsonValue& entry : list->array) {
        if (entry.kind != JsonValue::Kind::Object) {
            throw ParseError("thresholds JSON: rule must be an object");
        }
        Threshold t;
        if (const JsonValue* v = entry.find("case")) {
            if (v->kind != JsonValue::Kind::String) {
                throw ParseError("thresholds JSON: \"case\" must be a string");
            }
            t.case_name = v->string;
        }
        if (const JsonValue* v = entry.find("noise")) {
            if (v->kind != JsonValue::Kind::Number) {
                throw ParseError("thresholds JSON: \"noise\" must be a number");
            }
            t.noise = v->number;
        }
        const JsonValue* metric = entry.find("metric");
        if (metric == nullptr || metric->kind != JsonValue::Kind::String ||
            metric->string.empty()) {
            throw ParseError("thresholds JSON: rule lacks a \"metric\" string");
        }
        t.metric = metric->string;
        if (const JsonValue* v = entry.find("min")) {
            if (v->kind != JsonValue::Kind::Number) {
                throw ParseError("thresholds JSON: \"min\" must be a number");
            }
            t.min = v->number;
        }
        if (const JsonValue* v = entry.find("max")) {
            if (v->kind != JsonValue::Kind::Number) {
                throw ParseError("thresholds JSON: \"max\" must be a number");
            }
            t.max = v->number;
        }
        if (!t.min && !t.max) {
            throw ParseError("thresholds JSON: rule for metric '" + t.metric +
                             "' has neither \"min\" nor \"max\"");
        }
        out.push_back(std::move(t));
    }
    if (out.empty()) {
        throw ParseError("thresholds JSON: empty thresholds array");
    }
    return out;
}

std::vector<Threshold> load_thresholds_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error("load_thresholds_file: cannot open " + path);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return parse_thresholds(os.str());
}

GateResult check_gate(const std::vector<MetricRecord>& records,
                      const std::vector<Threshold>& thresholds) {
    GateResult result;
    result.rules_checked = thresholds.size();
    for (const Threshold& t : thresholds) {
        std::size_t matched = 0;
        for (const MetricRecord& r : records) {
            if (r.metric != t.metric) {
                continue;
            }
            if (t.case_name != "*" && t.case_name != r.case_name) {
                continue;
            }
            if (t.noise >= 0.0 && std::abs(t.noise - r.noise) > 1e-12) {
                continue;
            }
            ++matched;
            std::ostringstream where;
            where << r.case_name << " @ noise " << fmt::fixed(r.noise, 3)
                  << ": " << r.metric << " = " << json_number(r.value);
            if (t.min && r.value < *t.min) {
                result.violations.push_back(where.str() + " < min " +
                                            json_number(*t.min));
            }
            if (t.max && r.value > *t.max) {
                result.violations.push_back(where.str() + " > max " +
                                            json_number(*t.max));
            }
        }
        if (matched == 0) {
            result.violations.push_back(
                "threshold for metric '" + t.metric + "' (case " +
                t.case_name + ") matched no record - the gate would be "
                "silently disabled");
        }
        result.records_matched += matched;
    }
    result.pass = result.violations.empty();
    return result;
}

}  // namespace extradeep::eval
