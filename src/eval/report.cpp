#include "eval/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/json.hpp"
#include "common/table.hpp"

namespace extradeep::eval {

namespace {

void add_record(std::vector<MetricRecord>& out, const CaseScore& s,
                const std::string& metric, double value) {
    MetricRecord r;
    r.case_name = s.case_name;
    r.noise = s.noise;
    r.metric = metric;
    r.value = value;
    r.seed = s.seed;
    out.push_back(std::move(r));
}

}  // namespace

std::vector<MetricRecord> to_records(const CaseScore& s) {
    std::vector<MetricRecord> out;
    add_record(out, s, "exponent_recovery", s.exact_recovery ? 1.0 : 0.0);
    add_record(out, s, "smape_in_range", s.smape_in_range);
    add_record(out, s, "extrap_error_2x", s.extrap_error[0]);
    add_record(out, s, "extrap_error_4x", s.extrap_error[1]);
    add_record(out, s, "extrap_error_8x", s.extrap_error[2]);
    add_record(out, s, "pi_coverage", s.pi_coverage);
    if (s.cost_smape >= 0.0) {
        add_record(out, s, "cost_smape", s.cost_smape);
    }
    add_record(out, s, "fit_seconds", s.fit_seconds);
    add_record(out, s, "hypotheses_searched",
               static_cast<double>(s.hypotheses_searched));
    add_record(out, s, "hypotheses_per_sec", s.hypotheses_per_sec);
    return out;
}

std::vector<MetricRecord> to_records(const std::vector<CaseScore>& scores) {
    std::vector<MetricRecord> out;
    for (const auto& s : scores) {
        const auto records = to_records(s);
        out.insert(out.end(), records.begin(), records.end());
    }
    return out;
}

std::string render_table(const std::vector<CaseScore>& scores) {
    Table table({"case", "noise", "recovered", "SMAPE in-range", "err 2x",
                 "err 4x", "err 8x", "PI cover", "cost SMAPE", "hyp/s"});
    for (const auto& s : scores) {
        table.add_row({s.case_name, fmt::fixed(s.noise, 3),
                       s.exact_recovery ? "yes" : "NO",
                       fmt::percent(s.smape_in_range),
                       fmt::percent(s.extrap_error[0]),
                       fmt::percent(s.extrap_error[1]),
                       fmt::percent(s.extrap_error[2]),
                       fmt::fixed(s.pi_coverage, 2),
                       s.cost_smape >= 0.0 ? fmt::percent(s.cost_smape) : "-",
                       fmt::fixed(s.hypotheses_per_sec, 0)});
    }
    return table.to_string();
}

std::string bench_json(const std::vector<MetricRecord>& records,
                       const std::string& git_rev, const std::string& schema) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": " << json::quote(schema) << ",\n";
    os << "  \"git_rev\": " << json::quote(git_rev) << ",\n";
    os << "  \"records\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const MetricRecord& r = records[i];
        os << "    {\"case\": " << json::quote(r.case_name)
           << ", \"noise\": " << json::number(r.noise)
           << ", \"metric\": " << json::quote(r.metric)
           << ", \"value\": " << json::number(r.value)
           << ", \"seed\": " << r.seed << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::vector<Threshold> parse_thresholds(const std::string& json_text) {
    const json::Value doc = json::parse(json_text, "thresholds JSON");
    if (doc.kind != json::Value::Kind::Object) {
        throw ParseError("thresholds JSON: top level must be an object");
    }
    const json::Value* list = doc.find("thresholds");
    if (list == nullptr || list->kind != json::Value::Kind::Array) {
        throw ParseError(
            "thresholds JSON: missing \"thresholds\" array");
    }
    std::vector<Threshold> out;
    out.reserve(list->array.size());
    for (const json::Value& entry : list->array) {
        if (entry.kind != json::Value::Kind::Object) {
            throw ParseError("thresholds JSON: rule must be an object");
        }
        Threshold t;
        if (const json::Value* v = entry.find("case")) {
            if (v->kind != json::Value::Kind::String) {
                throw ParseError("thresholds JSON: \"case\" must be a string");
            }
            t.case_name = v->string;
        }
        if (const json::Value* v = entry.find("noise")) {
            if (v->kind != json::Value::Kind::Number) {
                throw ParseError("thresholds JSON: \"noise\" must be a number");
            }
            t.noise = v->number;
        }
        const json::Value* metric = entry.find("metric");
        if (metric == nullptr || metric->kind != json::Value::Kind::String ||
            metric->string.empty()) {
            throw ParseError("thresholds JSON: rule lacks a \"metric\" string");
        }
        t.metric = metric->string;
        if (const json::Value* v = entry.find("min")) {
            if (v->kind != json::Value::Kind::Number) {
                throw ParseError("thresholds JSON: \"min\" must be a number");
            }
            t.min = v->number;
        }
        if (const json::Value* v = entry.find("max")) {
            if (v->kind != json::Value::Kind::Number) {
                throw ParseError("thresholds JSON: \"max\" must be a number");
            }
            t.max = v->number;
        }
        if (!t.min && !t.max) {
            throw ParseError("thresholds JSON: rule for metric '" + t.metric +
                             "' has neither \"min\" nor \"max\"");
        }
        out.push_back(std::move(t));
    }
    if (out.empty()) {
        throw ParseError("thresholds JSON: empty thresholds array");
    }
    return out;
}

std::vector<Threshold> load_thresholds_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error("load_thresholds_file: cannot open " + path);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return parse_thresholds(os.str());
}

GateResult check_gate(const std::vector<MetricRecord>& records,
                      const std::vector<Threshold>& thresholds) {
    GateResult result;
    result.rules_checked = thresholds.size();
    for (const Threshold& t : thresholds) {
        std::size_t matched = 0;
        for (const MetricRecord& r : records) {
            if (r.metric != t.metric) {
                continue;
            }
            if (t.case_name != "*" && t.case_name != r.case_name) {
                continue;
            }
            if (t.noise >= 0.0 && std::abs(t.noise - r.noise) > 1e-12) {
                continue;
            }
            ++matched;
            std::ostringstream where;
            where << r.case_name << " @ noise " << fmt::fixed(r.noise, 3)
                  << ": " << r.metric << " = " << json::number(r.value);
            if (t.min && r.value < *t.min) {
                result.violations.push_back(where.str() + " < min " +
                                            json::number(*t.min));
            }
            if (t.max && r.value > *t.max) {
                result.violations.push_back(where.str() + " > max " +
                                            json::number(*t.max));
            }
        }
        if (matched == 0) {
            result.violations.push_back(
                "threshold for metric '" + t.metric + "' (case " +
                t.case_name + ") matched no record - the gate would be "
                "silently disabled");
        }
        result.records_matched += matched;
    }
    result.pass = result.violations.empty();
    return result;
}

}  // namespace extradeep::eval
