#include "eval/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "profiling/edp_io.hpp"

namespace extradeep::eval {

const char kOracleKernel[] = "oracle_kernel";
const char kOverheadKernel[] = "oracle_overhead_memcpy";
const char kSporadicKernel[] = "oracle_sporadic_os";

namespace {

using trace::KernelCategory;
using trace::NvtxMark;
using trace::RankTrace;
using trace::StepKind;
using trace::TraceEvent;

/// Builds a truth model from a constant and (coefficient, per-factor) specs,
/// so case definitions below stay readable.
modeling::PerformanceModel make_truth(
    double constant,
    const std::vector<std::pair<double, std::vector<modeling::Factor>>>& specs,
    std::vector<std::string> param_names) {
    std::vector<modeling::Term> terms;
    terms.reserve(specs.size());
    for (const auto& [coeff, factors] : specs) {
        modeling::Term t;
        t.coefficient = coeff;
        t.factors = factors;
        terms.push_back(std::move(t));
    }
    return modeling::PerformanceModel(constant, std::move(terms),
                                      std::move(param_names));
}

std::vector<std::vector<double>> grid_1d(std::vector<double> xs) {
    std::vector<std::vector<double>> out;
    out.reserve(xs.size());
    for (const double x : xs) {
        out.push_back({x});
    }
    return out;
}

std::vector<std::vector<double>> grid_2d(const std::vector<double>& xs,
                                         const std::vector<double>& ys) {
    std::vector<std::vector<double>> out;
    out.reserve(xs.size() * ys.size());
    for (const double x : xs) {
        for (const double y : ys) {
            out.push_back({x, y});
        }
    }
    return out;
}

/// Emits the marks of one epoch and one step's worth of events per step.
/// Each measured step carries the oracle kernel (the ground-truth value times
/// the run/step noise factors), the constant overhead memcpy, and - in the
/// first configuration only - the sporadic kernel the modelable filter must
/// drop. Returns the timeline cursor after the epoch.
double emit_epoch(RankTrace& tr, int epoch, double t, int train_steps,
                  int val_steps, double value, double warmup_inflation,
                  bool sporadic, double run_factor, double step_sigma,
                  Rng& step_rng) {
    tr.marks.push_back({NvtxMark::Kind::EpochStart, epoch, -1, StepKind::Train, t});
    const int total = train_steps + val_steps;
    for (int s = 0; s < total; ++s) {
        const bool train = s < train_steps;
        const StepKind kind = train ? StepKind::Train : StepKind::Validation;
        const int step = train ? s : s - train_steps;
        const double noisy = value * warmup_inflation * run_factor *
                             step_rng.lognormal_factor(step_sigma);
        // Step window sized to enclose its events with headroom; the
        // absolute schedule is irrelevant to aggregation (only window
        // membership matters).
        const double span = noisy + 0.2;
        tr.marks.push_back({NvtxMark::Kind::StepStart, epoch, step, kind, t});
        TraceEvent oracle;
        oracle.name = kOracleKernel;
        oracle.category = KernelCategory::CudaKernel;
        oracle.start = t + 1e-3;
        oracle.duration = noisy;
        oracle.visits = 1;
        tr.events.push_back(std::move(oracle));
        TraceEvent overhead;
        overhead.name = kOverheadKernel;
        overhead.category = KernelCategory::Memcpy;
        overhead.start = t + 2e-3;
        overhead.duration = 0.05;
        overhead.bytes = 4096.0;
        overhead.visits = 2;
        tr.events.push_back(std::move(overhead));
        if (sporadic) {
            TraceEvent os;
            os.name = kSporadicKernel;
            os.category = KernelCategory::Os;
            os.start = t + 3e-3;
            os.duration = 0.01;
            os.visits = 1;
            tr.events.push_back(std::move(os));
        }
        t += span;
        tr.marks.push_back({NvtxMark::Kind::StepEnd, epoch, step, kind, t});
        t += 0.01;  // inter-step gap
    }
    tr.marks.push_back({NvtxMark::Kind::EpochEnd, epoch, -1, StepKind::Train, t});
    return t + 0.05;
}

}  // namespace

double OracleCase::truth_value(const std::vector<double>& point) const {
    return truth.evaluate(point);
}

std::uint64_t case_name_hash(const std::string& name) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64-bit offset basis
    for (const unsigned char c : name) {
        h ^= c;
        h *= 1099511628211ULL;  // FNV prime
    }
    return h;
}

profiling::ProfiledRun materialize_run(const OracleCase& oracle,
                                       std::size_t config_index,
                                       int repetition,
                                       const MaterializeOptions& options) {
    if (config_index >= oracle.points.size()) {
        throw InvalidArgumentError("materialize_run: config index out of range");
    }
    if (oracle.repetitions < 1 || oracle.ranks < 1 || oracle.train_steps < 1) {
        throw InvalidArgumentError("materialize_run: degenerate case shape");
    }
    if (repetition < 0) {
        throw InvalidArgumentError("materialize_run: negative repetition");
    }
    const std::vector<double>& point = oracle.points[config_index];
    if (point.size() != oracle.num_params()) {
        throw InvalidArgumentError(
            "materialize_run: point/parameter dimension mismatch");
    }
    const double value = oracle.truth_value(point);
    if (!(value > 0.0)) {
        throw InvalidArgumentError(
            "materialize_run: oracle '" + oracle.name +
            "' is non-positive at a grid point; runtimes must stay positive");
    }
    const double run_sigma = options.noise * options.run_share;
    const double step_sigma =
        options.noise *
        std::sqrt(std::max(0.0, 1.0 - options.run_share * options.run_share));
    const std::uint64_t case_seed =
        mix64(case_name_hash(oracle.name), options.seed);

    const int rep = repetition;
    Rng run_rng(mix64(case_seed, mix64(config_index, 1000003ULL *
                                       static_cast<std::uint64_t>(rep))));
    const double run_factor =
        run_sigma > 0.0 ? run_rng.lognormal_factor(run_sigma) : 1.0;

    profiling::ProfiledRun run;
    for (std::size_t d = 0; d < point.size(); ++d) {
        run.params[oracle.truth.param_names()[d]] = point[d];
    }
    run.repetition = rep;
    double wall = 0.0;
    for (int rank = 0; rank < oracle.ranks; ++rank) {
        Rng step_rng = run_rng.fork(static_cast<std::uint64_t>(rank) + 17);
        RankTrace tr;
        tr.rank = rank;
        double t = 0.1;  // initialisation before the first epoch
        // Warm-up epoch: inflated values, later discarded by aggregation.
        t = emit_epoch(tr, 0, t, 1, 0, value, 1.5, config_index == 0,
                       run_factor, step_sigma, step_rng);
        // Measured epoch.
        t = emit_epoch(tr, 1, t, oracle.train_steps, oracle.val_steps,
                       value, 1.0, config_index == 0, run_factor,
                       step_sigma, step_rng);
        wall = std::max(wall, t);
        run.ranks.push_back(std::move(tr));
    }
    run.profiling_wall_time = wall;
    return run;
}

std::vector<profiling::ProfiledRun> materialize_config(
    const OracleCase& oracle, std::size_t config_index,
    const MaterializeOptions& options) {
    std::vector<profiling::ProfiledRun> runs;
    runs.reserve(static_cast<std::size_t>(oracle.repetitions));
    for (int rep = 0; rep < oracle.repetitions; ++rep) {
        runs.push_back(materialize_run(oracle, config_index, rep, options));
    }
    return runs;
}

std::vector<std::vector<profiling::ProfiledRun>> materialize(
    const OracleCase& oracle, const MaterializeOptions& options) {
    std::vector<std::vector<profiling::ProfiledRun>> configs;
    configs.reserve(oracle.points.size());
    for (std::size_t c = 0; c < oracle.points.size(); ++c) {
        configs.push_back(materialize_config(oracle, c, options));
    }
    return configs;
}

std::vector<std::string> write_edp_tree(const OracleCase& oracle,
                                        const MaterializeOptions& options,
                                        const std::string& dir) {
    std::filesystem::create_directories(dir);
    std::vector<std::string> paths;
    for (std::size_t c = 0; c < oracle.points.size(); ++c) {
        const auto runs = materialize_config(oracle, c, options);
        for (const auto& run : runs) {
            const std::string path =
                (std::filesystem::path(dir) /
                 (oracle.name + "_cfg" + std::to_string(c) + "_rep" +
                  std::to_string(run.repetition) + ".edp"))
                    .string();
            profiling::write_edp_file(path, run);
            paths.push_back(path);
        }
    }
    return paths;
}

std::vector<OracleCase> default_oracle_cases() {
    using modeling::Factor;
    const std::vector<double> five_steps = {2, 4, 6, 8, 10};
    std::vector<OracleCase> cases;

    auto add_1d = [&](const std::string& name, double constant,
                      std::vector<std::pair<double, std::vector<Factor>>> specs) {
        OracleCase c;
        c.name = name;
        c.truth = make_truth(constant, specs, {"x1"});
        c.points = grid_1d(five_steps);
        cases.push_back(std::move(c));
    };

    // Single-parameter suite: one case per growth class the PMNF search
    // space must tell apart on five points (paper Sec. 2.3).
    add_1d("constant", 5.0, {});
    add_1d("log", 1.0, {{0.8, {Factor{0, 0.0, 1}}}});
    add_1d("sqrt", 3.0, {{1.2, {Factor{0, 0.5, 0}}}});
    add_1d("linear", 2.0, {{0.5, {Factor{0, 1.0, 0}}}});
    add_1d("xlogx", 0.5, {{0.3, {Factor{0, 1.0, 1}}}});
    add_1d("x15", 2.0, {{0.1, {Factor{0, 1.5, 0}}}});
    add_1d("quadratic", 1.0, {{0.05, {Factor{0, 2.0, 0}}}});

    // Multi-parameter cases (Extra-P's best-factor combination heuristic).
    {
        OracleCase c;
        c.name = "mp_additive";
        c.truth = make_truth(
            1.0,
            {{0.5, {Factor{0, 1.0, 0}}}, {0.2, {Factor{1, 1.0, 0}}}},
            {"x1", "x2"});
        c.points = grid_2d(five_steps, {2, 4, 8});
        cases.push_back(std::move(c));
    }
    {
        OracleCase c;
        c.name = "mp_multiplicative";
        c.truth = make_truth(
            2.0, {{0.05, {Factor{0, 1.0, 0}, Factor{1, 1.0, 0}}}},
            {"x1", "x2"});
        c.points = grid_2d(five_steps, {2, 4, 8});
        cases.push_back(std::move(c));
    }
    return cases;
}

std::vector<OracleCase> quick_oracle_cases() {
    const std::vector<std::string> keep = {"constant", "log", "linear",
                                           "xlogx", "quadratic", "mp_additive"};
    std::vector<OracleCase> out;
    for (auto& c : default_oracle_cases()) {
        for (const auto& k : keep) {
            if (c.name == k) {
                out.push_back(std::move(c));
                break;
            }
        }
    }
    return out;
}

}  // namespace extradeep::eval
