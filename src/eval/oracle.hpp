#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "modeling/model.hpp"
#include "profiling/profiler.hpp"

namespace extradeep::eval {

/// A ground-truth accuracy case: a PMNF function with *known* exponents and
/// coefficients, plus the measurement grid it is sampled on. The oracle
/// materialises the function into full profiled runs (NVTX marks, per-step
/// kernel events, multiplicative noise) and round-trips them through the EDP
/// on-disk format, so scoring exercises the entire pipeline - parsing,
/// validation, aggregation, model generation - not just the fitter.
///
/// This is the repository's oracle-style validation (in the spirit of
/// Daydream's simulated ground truth): a silent regression anywhere between
/// ingestion and hypothesis selection shows up as a failure to recover a
/// function we know exactly.
struct OracleCase {
    std::string name;
    /// The ground-truth function. Its terms/constant are the quantities the
    /// pipeline must recover; dominant_growth() provides the reference
    /// exponents for recovery scoring.
    modeling::PerformanceModel truth;
    /// Modeling grid: one entry per measurement point, each with one value
    /// per parameter (the paper's efficient sampling uses 5 points per
    /// parameter).
    std::vector<std::vector<double>> points;
    int repetitions = 5;
    int ranks = 2;
    /// Measured steps per epoch (one warm-up epoch is prepended and later
    /// discarded by aggregation, as in the paper's sampling strategy).
    int train_steps = 7;
    int val_steps = 3;

    std::size_t num_params() const { return truth.param_names().size(); }

    /// Noise-free function value at a measurement point.
    double truth_value(const std::vector<double>& point) const;
};

/// Controls the multiplicative noise injected while materialising a case.
/// The structure mirrors src/sim's NoiseModel: a run-level factor drawn once
/// per (configuration, repetition) and an i.i.d. per-(rank, step) jitter,
/// with the run share dominating - that is what makes run-to-run variation
/// dominate step-to-step variation, as on real systems.
struct MaterializeOptions {
    /// Total multiplicative sigma; 0 produces exact, noise-free values.
    double noise = 0.0;
    std::uint64_t seed = 1;
    /// Fraction of sigma carried by the run-level component; the step-level
    /// component takes the quadrature complement.
    double run_share = 0.8;
};

/// The name of the synthetic kernel carrying the ground-truth function.
extern const char kOracleKernel[];
/// A constant-overhead memcpy kernel present at every step (exercises phase
/// bucketing and byte metrics).
extern const char kOverheadKernel[];
/// A kernel emitted only in the first configuration, which the
/// ">= 5 configurations" modelable-kernel filter must exclude.
extern const char kSporadicKernel[];

/// Materialises a single repetition of one measurement point - one profiled
/// run (two epochs: warm-up + measured; one oracle event per step). Every
/// repetition seeds its own independent noise stream from (case, seed,
/// config, repetition), so materialize_config(c) is exactly
/// {materialize_run(c, 0), ..., materialize_run(c, reps-1)} and an adaptive
/// planner pulling runs one at a time observes byte-identical data to the
/// fixed grid. `repetition` may exceed oracle.repetitions: extra pulls keep
/// drawing fresh, deterministic repetitions.
profiling::ProfiledRun materialize_run(const OracleCase& oracle,
                                       std::size_t config_index,
                                       int repetition,
                                       const MaterializeOptions& options);

/// Materialises the repetitions of one measurement point as in-memory
/// profiled runs. `config_index` selects the point and seeds the noise
/// streams.
std::vector<profiling::ProfiledRun> materialize_config(
    const OracleCase& oracle, std::size_t config_index,
    const MaterializeOptions& options);

/// Materialises every measurement point: one inner vector per configuration,
/// holding its repetitions - the shape ingest_runs expects.
std::vector<std::vector<profiling::ProfiledRun>> materialize(
    const OracleCase& oracle, const MaterializeOptions& options);

/// Materialises the case and writes one EDP file per (configuration,
/// repetition) into `dir` (created if missing). Returns the file paths;
/// ingestion of exactly these paths must reproduce the in-memory runs.
std::vector<std::string> write_edp_tree(const OracleCase& oracle,
                                        const MaterializeOptions& options,
                                        const std::string& dir);

/// The default oracle suite: single-parameter cases covering constant,
/// logarithmic, sublinear, linear, linearithmic and polynomial growth on the
/// paper's 5-point sampling grid, plus multi-parameter (additive and
/// multiplicative) cases.
std::vector<OracleCase> default_oracle_cases();

/// Subset of default_oracle_cases() used by `extradeep-eval --quick` and the
/// eval_accuracy_gate ctest.
std::vector<OracleCase> quick_oracle_cases();

/// Deterministic FNV-1a hash of a case name, used to derive per-case seeds
/// (std::hash is implementation-defined and would break cross-machine
/// reproducibility of BENCH_eval.json).
std::uint64_t case_name_hash(const std::string& name);

}  // namespace extradeep::eval
