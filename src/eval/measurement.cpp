#include "eval/measurement.hpp"

#include <utility>

#include "aggregation/aggregate.hpp"
#include "common/error.hpp"

namespace extradeep::eval {

double MeasurementSource::run_cost(std::size_t) const { return 1.0; }

OracleMeasurementSource::OracleMeasurementSource(OracleCase oracle,
                                                 MaterializeOptions options)
    : oracle_(std::move(oracle)), options_(options) {
    if (oracle_.points.empty()) {
        throw InvalidArgumentError(
            "OracleMeasurementSource: oracle case has no measurement points");
    }
}

std::size_t OracleMeasurementSource::num_configs() const {
    return oracle_.points.size();
}

const std::vector<double>& OracleMeasurementSource::point(
    std::size_t config) const {
    if (config >= oracle_.points.size()) {
        throw InvalidArgumentError(
            "OracleMeasurementSource: config index out of range");
    }
    return oracle_.points[config];
}

const std::vector<std::string>& OracleMeasurementSource::param_names() const {
    return oracle_.truth.param_names();
}

double OracleMeasurementSource::measure(std::size_t config, int repetition) {
    const profiling::ProfiledRun run =
        materialize_run(oracle_, config, repetition, options_);
    const std::vector<profiling::ProfiledRun> runs = {run};
    const aggregation::ConfigurationData data =
        aggregation::aggregate_runs(runs);
    const aggregation::KernelStats* kernel = data.find_kernel(kOracleKernel);
    if (kernel == nullptr) {
        throw Error("OracleMeasurementSource: oracle kernel missing from '" +
                    oracle_.name + "' config " + std::to_string(config));
    }
    ++runs_materialized_;
    return kernel->train_metric(aggregation::Metric::Time);
}

}  // namespace extradeep::eval
