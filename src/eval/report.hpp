#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "eval/scorer.hpp"

namespace extradeep::eval {

/// One machine-readable accuracy/perf data point. The (case, noise, metric,
/// value, seed) tuple is the stable schema of BENCH_eval.json; later PRs
/// append runs with new git revisions to trace the accuracy trajectory.
struct MetricRecord {
    std::string case_name;
    double noise = 0.0;
    std::string metric;
    double value = 0.0;
    std::uint64_t seed = 1;
};

/// Flattens a score into records. Deterministic metrics come first
/// (exponent_recovery, smape_in_range, extrap_error_{2x,4x,8x},
/// pi_coverage, and cost_smape when applicable), then throughput metrics
/// (fit_seconds, hypotheses_searched, hypotheses_per_sec), which are
/// machine-dependent and never gated.
std::vector<MetricRecord> to_records(const CaseScore& score);
std::vector<MetricRecord> to_records(const std::vector<CaseScore>& scores);

/// Human-readable results table (one row per case x noise).
std::string render_table(const std::vector<CaseScore>& scores);

/// Serialises records as a BENCH_*.json document:
///   {"schema": "<schema>", "git_rev": "...", "records": [...]}
/// The schema tag names the producing harness (extradeep-eval/1 for the
/// accuracy suite, extradeep-perf/1 for the performance suite); numbers are
/// rendered locale-independently and round-trip exactly enough for gate
/// checking.
std::string bench_json(const std::vector<MetricRecord>& records,
                       const std::string& git_rev,
                       const std::string& schema = "extradeep-eval/1");

/// One gate rule from eval_thresholds.json. `case_name` may be "*" (any
/// case); `noise` may be -1 (any noise level). A rule must match at least
/// one record, otherwise the gate fails - a renamed metric or removed case
/// must not silently disable its threshold.
struct Threshold {
    std::string case_name = "*";
    double noise = -1.0;
    std::string metric;
    std::optional<double> min;
    std::optional<double> max;
};

/// Parses a thresholds document:
///   {"thresholds": [{"case": "*", "noise": 0.0,
///                    "metric": "exponent_recovery", "min": 1.0}, ...]}
/// Throws ParseError on malformed JSON or missing fields.
std::vector<Threshold> parse_thresholds(const std::string& json_text);
std::vector<Threshold> load_thresholds_file(const std::string& path);

/// Result of checking records against thresholds.
struct GateResult {
    bool pass = true;
    std::size_t rules_checked = 0;
    std::size_t records_matched = 0;
    std::vector<std::string> violations;
};

GateResult check_gate(const std::vector<MetricRecord>& records,
                      const std::vector<Threshold>& thresholds);

}  // namespace extradeep::eval
