#include "eval/scorer.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <sstream>

#include "aggregation/validate.hpp"
#include "analysis/cost.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "extradeep/ingest.hpp"
#include "obs/trace.hpp"
#include "profiling/edp_io.hpp"

namespace extradeep::eval {

namespace {

/// The aggregated modeling input recovered from the EDP files.
struct RecoveredData {
    std::vector<std::vector<double>> points;
    std::vector<double> values;  ///< oracle kernel Ṽ_t (train-step time)
    std::string summary;
    std::size_t configs_kept = 0;
    std::size_t runs_kept = 0;
};

double oracle_train_time(const aggregation::ConfigurationData& config,
                         const std::string& case_name) {
    const aggregation::KernelStats* k =
        config.find_kernel(kOracleKernel);
    if (k == nullptr) {
        throw Error("score_case(" + case_name +
                    "): oracle kernel lost by the pipeline");
    }
    return k->train_metric(aggregation::Metric::Time);
}

std::vector<double> point_of(const aggregation::ConfigurationData& config,
                             const std::vector<std::string>& param_names,
                             const std::string& case_name) {
    std::vector<double> point;
    point.reserve(param_names.size());
    for (const auto& name : param_names) {
        const auto it = config.params.find(name);
        if (it == config.params.end()) {
            throw Error("score_case(" + case_name +
                        "): configuration lost parameter '" + name + "'");
        }
        point.push_back(it->second);
    }
    return point;
}

/// Single-parameter path: the full ingest_edp_files stack, including
/// ExperimentData and the modelable-kernel filter.
RecoveredData recover_single_param(const OracleCase& oracle,
                                   const std::vector<std::string>& paths) {
    IngestOptions options;
    options.primary_parameter = oracle.truth.param_names().front();
    const IngestResult result = ingest_edp_files(paths, options);
    if (!result.modelable()) {
        throw Error("score_case(" + oracle.name +
                    "): ingestion left too few configurations (" +
                    result.summary() + ")");
    }
    // The modelable-kernel filter must keep the oracle kernel and drop the
    // sporadic one (present only in the first configuration).
    const auto modelable = result.data.modelable_kernels();
    const bool has_oracle =
        std::find(modelable.begin(), modelable.end(), kOracleKernel) !=
        modelable.end();
    const bool has_sporadic =
        std::find(modelable.begin(), modelable.end(), kSporadicKernel) !=
        modelable.end();
    if (!has_oracle || has_sporadic) {
        throw Error("score_case(" + oracle.name +
                    "): modelable-kernel filter misbehaved (oracle " +
                    (has_oracle ? "kept" : "lost") + ", sporadic " +
                    (has_sporadic ? "kept" : "dropped") + ")");
    }
    RecoveredData out;
    for (const auto& config : result.data.configs()) {
        out.points.push_back(
            point_of(config, oracle.truth.param_names(), oracle.name));
        out.values.push_back(oracle_train_time(config, oracle.name));
    }
    out.summary = result.summary();
    out.configs_kept = result.configs_kept;
    out.runs_kept = result.runs_kept;
    return out;
}

/// Multi-parameter path: ExperimentData keys points by the primary parameter
/// alone and cannot hold a 2-D grid, so parse, validate and aggregate
/// directly - the same stages ingest_runs drives.
RecoveredData recover_multi_param(const OracleCase& oracle,
                                  const std::vector<std::string>& paths) {
    profiling::EdpReadOptions read_options;
    read_options.mode = profiling::ParseMode::Tolerant;
    std::map<std::map<std::string, double>,
             std::vector<profiling::ProfiledRun>>
        groups;
    for (const auto& path : paths) {
        profiling::EdpReadResult parsed =
            profiling::read_edp_file(path, read_options);
        if (!parsed.ok()) {
            throw Error("score_case(" + oracle.name + "): " + path +
                        " quarantined (" + parsed.diagnostics.summary() + ")");
        }
        groups[parsed.run.params].push_back(std::move(parsed.run));
    }
    std::vector<std::vector<profiling::ProfiledRun>> configs;
    configs.reserve(groups.size());
    for (auto& [params, runs] : groups) {
        configs.push_back(std::move(runs));
    }
    const aggregation::ExperimentVerdict verdict =
        aggregation::validate_experiment(configs);
    RecoveredData out;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!verdict.keep_config[c]) {
            continue;
        }
        std::vector<profiling::ProfiledRun> kept;
        for (std::size_t r = 0; r < configs[c].size(); ++r) {
            if (verdict.keep_run[c][r]) {
                kept.push_back(std::move(configs[c][r]));
            }
        }
        const auto config = aggregation::aggregate_runs(kept);
        out.points.push_back(
            point_of(config, oracle.truth.param_names(), oracle.name));
        out.values.push_back(oracle_train_time(config, oracle.name));
        out.configs_kept += 1;
        out.runs_kept += kept.size();
    }
    std::ostringstream os;
    os << "kept " << out.runs_kept << " runs, " << out.configs_kept << "/"
       << configs.size() << " configurations; "
       << verdict.diagnostics.summary();
    out.summary = os.str();
    if (out.points.size() < oracle.points.size()) {
        throw Error("score_case(" + oracle.name +
                    "): validation dropped oracle configurations (" +
                    out.summary + ")");
    }
    return out;
}

/// Dense in-range evaluation grid: `per_dim` evenly spaced values between
/// the grid minimum and maximum of every parameter.
std::vector<std::vector<double>> dense_grid(
    const std::vector<std::vector<double>>& points, int per_dim) {
    const std::size_t dims = points.front().size();
    std::vector<double> lo(dims, 0.0);
    std::vector<double> hi(dims, 0.0);
    for (std::size_t d = 0; d < dims; ++d) {
        lo[d] = hi[d] = points.front()[d];
        for (const auto& p : points) {
            lo[d] = std::min(lo[d], p[d]);
            hi[d] = std::max(hi[d], p[d]);
        }
    }
    std::vector<std::vector<double>> grid;
    std::vector<std::size_t> idx(dims, 0);
    while (true) {
        std::vector<double> p(dims);
        for (std::size_t d = 0; d < dims; ++d) {
            p[d] = lo[d] + (hi[d] - lo[d]) * static_cast<double>(idx[d]) /
                               static_cast<double>(per_dim - 1);
        }
        grid.push_back(std::move(p));
        std::size_t d = 0;
        while (d < dims && ++idx[d] == static_cast<std::size_t>(per_dim)) {
            idx[d] = 0;
            ++d;
        }
        if (d == dims) {
            break;
        }
    }
    return grid;
}

/// One fresh aggregated observation of the oracle at `point` - the quantity
/// the model's prediction interval claims to bracket.
double fresh_observation(const OracleCase& oracle,
                         const std::vector<double>& point, double noise,
                         std::uint64_t seed) {
    OracleCase probe = oracle;
    probe.points = {point};
    MaterializeOptions m;
    m.noise = noise;
    m.seed = seed;
    const auto runs = materialize_config(probe, 0, m);
    const auto config = aggregation::aggregate_runs(runs);
    return oracle_train_time(config, oracle.name);
}

}  // namespace

ModelAccuracy score_model(const OracleCase& oracle,
                          const modeling::PerformanceModel& fitted) {
    ModelAccuracy out;

    // Exponent recovery: dominant growth must match in every parameter.
    out.exact_recovery = true;
    for (std::size_t d = 0; d < oracle.num_params(); ++d) {
        if (fitted.dominant_growth(static_cast<int>(d)) !=
            oracle.truth.dominant_growth(static_cast<int>(d))) {
            out.exact_recovery = false;
        }
    }

    // In-range SMAPE on a dense grid against the noiseless truth.
    const int per_dim = oracle.num_params() == 1 ? 33 : 9;
    const auto grid = dense_grid(oracle.points, per_dim);
    std::vector<double> predicted;
    std::vector<double> actual;
    predicted.reserve(grid.size());
    actual.reserve(grid.size());
    for (const auto& p : grid) {
        predicted.push_back(fitted.evaluate(p));
        actual.push_back(oracle.truth.evaluate(p));
    }
    out.smape_in_range = stats::smape(predicted, actual);

    // Extrapolation error at 2x/4x/8x the largest primary value, other
    // parameters held at their grid maximum (the paper's P+ methodology).
    std::vector<double> max_point = oracle.points.front();
    for (const auto& p : oracle.points) {
        for (std::size_t d = 0; d < p.size(); ++d) {
            max_point[d] = std::max(max_point[d], p[d]);
        }
    }
    for (int i = 0; i < 3; ++i) {
        std::vector<double> p = max_point;
        p[0] *= static_cast<double>(2 << i);
        out.extrap_error[i] =
            stats::percent_error(fitted.evaluate(p), oracle.truth.evaluate(p));
    }
    return out;
}

CaseScore score_case(const OracleCase& oracle, const ScoreOptions& options) {
    const obs::Span case_span{"eval.score_case"};
    if (oracle.points.empty()) {
        throw InvalidArgumentError("score_case: case without measurement points");
    }
    CaseScore score;
    score.case_name = oracle.name;
    score.noise = options.noise;
    score.seed = options.seed;
    score.truth_str = oracle.truth.to_string();

    MaterializeOptions mat;
    mat.noise = options.noise;
    mat.seed = options.seed;

    // (1) Materialise and round-trip through the on-disk EDP format. The
    // tag carries the pid so concurrent harness processes (e.g. parallel
    // ctest) never share a work directory.
    std::ostringstream tag;
    tag << "extradeep-eval-" << oracle.name << "-n"
        << static_cast<int>(options.noise * 1e4) << "-s" << options.seed
        << "-p" << ::getpid();
    const std::filesystem::path dir =
        options.work_dir.empty()
            ? std::filesystem::temp_directory_path() / tag.str()
            : std::filesystem::path(options.work_dir) / tag.str();
    const std::vector<std::string> paths =
        write_edp_tree(oracle, mat, dir.string());
    score.files_written = paths.size();

    // (2) Ingest: parse -> validate -> aggregate.
    RecoveredData recovered;
    try {
        recovered = oracle.num_params() == 1
                        ? recover_single_param(oracle, paths)
                        : recover_multi_param(oracle, paths);
    } catch (...) {
        if (!options.keep_files) {
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);  // best-effort cleanup
        }
        throw;
    }
    if (!options.keep_files) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
    score.ingest_summary = recovered.summary;
    score.configs_kept = recovered.configs_kept;
    score.runs_kept = recovered.runs_kept;

    // (3) Model generation.
    modeling::FitOptions fit_options;
    fit_options.num_threads = options.fit_threads;
    const modeling::ModelGenerator generator(fit_options);
    const obs::Clock& clock =
        options.clock != nullptr ? *options.clock : obs::steady_clock_instance();
    const std::uint64_t t0 = clock.now_ns();
    const modeling::PerformanceModel fitted = generator.fit(
        recovered.points, recovered.values, oracle.truth.param_names());
    const std::uint64_t t1 = clock.now_ns();
    score.fit_seconds = static_cast<double>(t1 - t0) * 1e-9;
    score.hypotheses_searched = fitted.quality().hypotheses_searched;
    score.hypotheses_per_sec =
        static_cast<double>(score.hypotheses_searched) /
        std::max(score.fit_seconds, 1e-9);
    score.fitted_str = fitted.to_string();

    // (4-6) Exponent recovery, dense-grid SMAPE and extrapolation error -
    // the deterministic truth-referenced metrics shared with the planner.
    const ModelAccuracy accuracy = score_model(oracle, fitted);
    score.exact_recovery = accuracy.exact_recovery;
    score.smape_in_range = accuracy.smape_in_range;
    for (int i = 0; i < 3; ++i) {
        score.extrap_error[i] = accuracy.extrap_error[i];
    }

    const int per_dim = oracle.num_params() == 1 ? 33 : 9;
    const auto grid = dense_grid(oracle.points, per_dim);
    std::vector<double> max_point = oracle.points.front();
    for (const auto& p : oracle.points) {
        for (std::size_t d = 0; d < p.size(); ++d) {
            max_point[d] = std::max(max_point[d], p[d]);
        }
    }

    // (7) Prediction-interval coverage against fresh aggregated
    // observations at the modeling points and at 2x.
    {
        std::vector<std::vector<double>> coverage_points = oracle.points;
        std::vector<double> twice = max_point;
        twice[0] *= 2.0;
        coverage_points.push_back(twice);
        const int draws = options.noise > 0.0 ? options.coverage_draws : 1;
        int covered = 0;
        int total = 0;
        for (std::size_t pi = 0; pi < coverage_points.size(); ++pi) {
            const auto& p = coverage_points[pi];
            const modeling::PredictionInterval interval =
                fitted.predict_interval(p, options.confidence);
            for (int dr = 0; dr < draws; ++dr) {
                const std::uint64_t draw_seed =
                    mix64(options.seed,
                          mix64(0xC0FFEEULL + pi,
                                static_cast<std::uint64_t>(dr)));
                const double obs =
                    fresh_observation(oracle, p, options.noise, draw_seed);
                const double tol = 1e-9 * (1.0 + std::abs(obs));
                if (obs >= interval.lower - tol && obs <= interval.upper + tol) {
                    ++covered;
                }
                ++total;
            }
        }
        score.pi_coverage =
            static_cast<double>(covered) / static_cast<double>(total);
    }

    // (8) Analysis layer: the Eq. 14 cost model fitted from the recovered
    // runtimes must track the analytic truth cost (single-parameter only;
    // cost is a function of the rank count x1).
    if (oracle.num_params() == 1) {
        constexpr double kCoresPerRank = 16.0;
        std::vector<double> xs;
        xs.reserve(recovered.points.size());
        for (const auto& p : recovered.points) {
            xs.push_back(p.front());
        }
        const modeling::PerformanceModel cost_model = analysis::model_cost(
            xs, recovered.values, analysis::core_hours_cost(kCoresPerRank),
            generator);
        std::vector<double> cost_pred;
        std::vector<double> cost_truth;
        for (const auto& p : grid) {
            cost_pred.push_back(cost_model.evaluate(p));
            cost_truth.push_back(analysis::training_cost_core_hours(
                oracle.truth.evaluate(p), p.front(), kCoresPerRank));
        }
        score.cost_smape = stats::smape(cost_pred, cost_truth);
    }
    return score;
}

std::vector<CaseScore> score_suite(const std::vector<OracleCase>& cases,
                                   const std::vector<double>& noise_levels,
                                   const ScoreOptions& options) {
    std::vector<CaseScore> out;
    out.reserve(cases.size() * noise_levels.size());
    for (const auto& oracle : cases) {
        for (const double noise : noise_levels) {
            ScoreOptions per_case = options;
            per_case.noise = noise;
            out.push_back(score_case(oracle, per_case));
        }
    }
    return out;
}

}  // namespace extradeep::eval
