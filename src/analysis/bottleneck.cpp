#include "analysis/bottleneck.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace extradeep::analysis {

namespace {

RankedKernel make_entry(const NamedModel& nm, double target_scale, int param) {
    RankedKernel r;
    r.name = nm.name;
    r.growth = nm.model.growth_to_string(param);
    const auto [poly, log] = nm.model.dominant_growth(param);
    r.poly_exp = poly;
    r.log_exp = log;
    std::vector<double> point(static_cast<std::size_t>(param) + 1, 1.0);
    point[param] = target_scale;
    r.predicted_at_target = nm.model.evaluate(point);
    return r;
}

}  // namespace

std::vector<RankedKernel> rank_by_growth(const std::vector<NamedModel>& models,
                                         double target_scale, int param) {
    if (target_scale <= 0.0) {
        throw InvalidArgumentError("rank_by_growth: target scale must be positive");
    }
    std::vector<RankedKernel> out;
    out.reserve(models.size());
    for (const auto& nm : models) {
        out.push_back(make_entry(nm, target_scale, param));
    }
    std::sort(out.begin(), out.end(),
              [](const RankedKernel& a, const RankedKernel& b) {
                  if (a.poly_exp != b.poly_exp) return a.poly_exp > b.poly_exp;
                  if (a.log_exp != b.log_exp) return a.log_exp > b.log_exp;
                  return a.predicted_at_target > b.predicted_at_target;
              });
    return out;
}

std::vector<RankedKernel> rank_by_predicted_value(
    const std::vector<NamedModel>& models, double target_scale, int param) {
    if (target_scale <= 0.0) {
        throw InvalidArgumentError(
            "rank_by_predicted_value: target scale must be positive");
    }
    std::vector<RankedKernel> out;
    out.reserve(models.size());
    for (const auto& nm : models) {
        out.push_back(make_entry(nm, target_scale, param));
    }
    std::sort(out.begin(), out.end(),
              [](const RankedKernel& a, const RankedKernel& b) {
                  return a.predicted_at_target > b.predicted_at_target;
              });
    return out;
}

}  // namespace extradeep::analysis
