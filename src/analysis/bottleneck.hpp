#pragma once

#include <string>
#include <vector>

#include "modeling/model.hpp"

namespace extradeep::analysis {

/// One kernel/function with its fitted runtime model, ready for ranking.
struct NamedModel {
    std::string name;
    modeling::PerformanceModel model;
};

/// A ranked entry: the kernel, its Big-O growth rendering, and its predicted
/// share at a target scale.
struct RankedKernel {
    std::string name;
    std::string growth;          ///< e.g. "O(x1 * log2(x1))"
    double poly_exp = 0.0;       ///< dominant polynomial exponent
    int log_exp = 0;             ///< dominant logarithmic exponent
    double predicted_at_target = 0.0;  ///< model value at the target scale
};

/// Paper Sec. 3.1: ranks runtime models by their growth trend (Big-O), so
/// the kernels that will become the bottleneck at scale appear first.
/// Growth ties are broken by the predicted value at `target_scale` (larger
/// first), which is also how latent bottlenecks with equal asymptotics are
/// separated in practice.
std::vector<RankedKernel> rank_by_growth(const std::vector<NamedModel>& models,
                                         double target_scale, int param = 0);

/// Ranks kernels by the speedup their models predict at `target_scale`
/// (largest gain first) - "the functions that benefit the most or least
/// from scaling up the application" (Sec. 3.1).
std::vector<RankedKernel> rank_by_predicted_value(
    const std::vector<NamedModel>& models, double target_scale, int param = 0);

}  // namespace extradeep::analysis
