#include "analysis/config_search.hpp"

#include <algorithm>

#include "analysis/speedup.hpp"
#include "common/error.hpp"

namespace extradeep::analysis {

ConfigSearchResult find_cost_effective_config(
    const RuntimeFn& runtime_model, const std::vector<double>& candidate_ranks,
    const CostFunction& cost, const ConfigSearchLimits& limits,
    parallel::ScalingMode scaling) {
    if (candidate_ranks.empty()) {
        throw InvalidArgumentError("find_cost_effective_config: no candidates");
    }
    if (!runtime_model) {
        throw InvalidArgumentError("find_cost_effective_config: null runtime model");
    }
    std::vector<double> ranks = candidate_ranks;
    std::sort(ranks.begin(), ranks.end());

    ConfigSearchResult result;
    std::vector<double> runtimes;
    runtimes.reserve(ranks.size());
    for (const double x : ranks) {
        if (x <= 0.0) {
            throw InvalidArgumentError(
                "find_cost_effective_config: non-positive rank count");
        }
        runtimes.push_back(runtime_model(x));
    }
    const std::vector<double> eff = efficiencies(ranks, runtimes);

    for (std::size_t i = 0; i < ranks.size(); ++i) {
        ConfigCandidate c;
        c.ranks = ranks[i];
        c.time_s = runtimes[i];
        c.efficiency_pct = eff[i];
        if (runtimes[i] <= 0.0) {
            // The model extrapolated into nonsense at this scale; the
            // candidate is reported but never feasible.
            c.cost = std::numeric_limits<double>::infinity();
            c.feasible_time = false;
            c.feasible_cost = false;
        } else {
            c.cost = cost(runtimes[i], ranks[i]);
            c.feasible_time = c.time_s <= limits.max_time_s;
            c.feasible_cost = c.cost <= limits.max_cost;
        }
        result.candidates.push_back(c);
    }

    if (scaling == parallel::ScalingMode::Weak) {
        // Weak scaling: the smallest feasible allocation is always the
        // cheapest and the most efficient (Sec. 3.3).
        for (std::size_t i = 0; i < result.candidates.size(); ++i) {
            if (result.candidates[i].feasible()) {
                result.best = i;
                break;
            }
        }
    } else {
        // Strong scaling: highest parallel efficiency among the feasible
        // candidates.
        double best_eff = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < result.candidates.size(); ++i) {
            const auto& c = result.candidates[i];
            if (c.feasible() && c.efficiency_pct > best_eff) {
                best_eff = c.efficiency_pct;
                result.best = i;
            }
        }
    }
    return result;
}

}  // namespace extradeep::analysis
