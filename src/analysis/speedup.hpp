#pragma once

#include <span>
#include <vector>

#include "modeling/fitter.hpp"

namespace extradeep::analysis {

/// Eq. 11: the speedup of each measurement point relative to the first,
/// in percent: Δ_k = (T_1 - T_k) / (T_1 / 100); Δ_1 == 0. Positive values
/// mean the configuration is faster than the baseline. Throws
/// InvalidArgumentError on empty input or zero baseline.
std::vector<double> speedups(std::span<const double> runtimes);

/// Eq. 13: per-point parallel efficiency in percent. The true speedup Δ_a
/// comes from Eq. 11; the theoretical speedup Δ_t = (x_k - x_1)/(x_1/100)
/// assumes zero parallelisation overhead. ε_1 is 100 % by definition.
/// Note: this follows the paper's definition literally; it is a relative
/// ranking metric, not the textbook T_1·x_1/(T_k·x_k) efficiency (see
/// classic_efficiencies for that).
std::vector<double> efficiencies(std::span<const double> ranks,
                                 std::span<const double> runtimes);

/// Textbook parallel efficiency in percent: strong scaling
/// 100 · T_1·x_1 / (T_k·x_k); provided as a cross-check next to the paper's
/// Eq. 13 metric.
std::vector<double> classic_efficiencies(std::span<const double> ranks,
                                         std::span<const double> runtimes);

/// Eq. 12: fits a PMNF model to the per-point speedups, giving the speedup
/// of a kernel/application as a function of the configuration parameters.
modeling::PerformanceModel model_speedup(
    const std::vector<double>& ranks, const std::vector<double>& runtimes,
    const modeling::ModelGenerator& generator = modeling::ModelGenerator());

/// Fits a PMNF model to the per-point parallel efficiencies (Sec. 3.2).
modeling::PerformanceModel model_efficiency(
    const std::vector<double>& ranks, const std::vector<double>& runtimes,
    const modeling::ModelGenerator& generator = modeling::ModelGenerator());

}  // namespace extradeep::analysis
