#pragma once

#include <functional>
#include <vector>

#include "modeling/fitter.hpp"

namespace extradeep::analysis {

/// Eq. 14: the training cost of a configuration in CPU core hours,
/// C = T(x) * o / 3600 with o = x1 * rho (total CPU cores of all ranks).
/// On the paper's systems GPUs are not billed separately, so core hours are
/// the universal cost unit.
double training_cost_core_hours(double runtime_s, double ranks,
                                double cores_per_rank);

/// Custom cost formula: maps (runtime seconds, ranks) to a cost value, e.g.
/// a monetary cloud price. The default is Eq. 14 with the given rho.
using CostFunction = std::function<double(double runtime_s, double ranks)>;

/// The Eq. 14 cost function for a fixed cores-per-rank value.
CostFunction core_hours_cost(double cores_per_rank);

/// Fits a PMNF cost model C(x1) from per-point runtimes (the paper's
/// C_epoch(x1) = 0.082 * x1^1.62 case-study model is of this shape). The
/// cost at each measurement point is computed with `cost` and then modeled.
modeling::PerformanceModel model_cost(
    const std::vector<double>& ranks, const std::vector<double>& runtimes,
    const CostFunction& cost,
    const modeling::ModelGenerator& generator = modeling::ModelGenerator());

}  // namespace extradeep::analysis
