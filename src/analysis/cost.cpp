#include "analysis/cost.hpp"

#include "common/error.hpp"

namespace extradeep::analysis {

double training_cost_core_hours(double runtime_s, double ranks,
                                double cores_per_rank) {
    if (runtime_s < 0.0 || ranks <= 0.0 || cores_per_rank <= 0.0) {
        throw InvalidArgumentError("training_cost_core_hours: bad input");
    }
    return runtime_s * ranks * cores_per_rank / 3600.0;
}

CostFunction core_hours_cost(double cores_per_rank) {
    if (cores_per_rank <= 0.0) {
        throw InvalidArgumentError("core_hours_cost: rho must be positive");
    }
    return [cores_per_rank](double runtime_s, double ranks) {
        return training_cost_core_hours(runtime_s, ranks, cores_per_rank);
    };
}

modeling::PerformanceModel model_cost(const std::vector<double>& ranks,
                                      const std::vector<double>& runtimes,
                                      const CostFunction& cost,
                                      const modeling::ModelGenerator& generator) {
    if (ranks.size() != runtimes.size()) {
        throw InvalidArgumentError("model_cost: size mismatch");
    }
    std::vector<double> costs;
    costs.reserve(ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        costs.push_back(cost(runtimes[i], ranks[i]));
    }
    return generator.fit(ranks, costs);
}

}  // namespace extradeep::analysis
