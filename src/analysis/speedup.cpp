#include "analysis/speedup.hpp"

#include "common/error.hpp"

namespace extradeep::analysis {

std::vector<double> speedups(std::span<const double> runtimes) {
    if (runtimes.empty()) {
        throw InvalidArgumentError("speedups: empty input");
    }
    const double t1 = runtimes.front();
    if (t1 == 0.0) {
        throw InvalidArgumentError("speedups: zero baseline runtime");
    }
    std::vector<double> out;
    out.reserve(runtimes.size());
    for (const double tk : runtimes) {
        out.push_back((t1 - tk) / (t1 / 100.0));
    }
    out.front() = 0.0;
    return out;
}

std::vector<double> efficiencies(std::span<const double> ranks,
                                 std::span<const double> runtimes) {
    if (ranks.size() != runtimes.size()) {
        throw InvalidArgumentError("efficiencies: size mismatch");
    }
    const std::vector<double> delta_a = speedups(runtimes);
    const double x1 = ranks.front();
    if (x1 <= 0.0) {
        throw InvalidArgumentError("efficiencies: non-positive baseline ranks");
    }
    std::vector<double> out(ranks.size(), 100.0);
    for (std::size_t k = 1; k < ranks.size(); ++k) {
        const double delta_t = (ranks[k] - x1) / (x1 / 100.0);
        if (delta_t == 0.0) {
            out[k] = 100.0;
        } else {
            out[k] = 100.0 * delta_a[k] / delta_t;
        }
    }
    return out;
}

std::vector<double> classic_efficiencies(std::span<const double> ranks,
                                         std::span<const double> runtimes) {
    if (ranks.size() != runtimes.size() || ranks.empty()) {
        throw InvalidArgumentError("classic_efficiencies: bad input");
    }
    const double t1 = runtimes.front();
    const double x1 = ranks.front();
    if (t1 <= 0.0 || x1 <= 0.0) {
        throw InvalidArgumentError("classic_efficiencies: non-positive baseline");
    }
    std::vector<double> out;
    out.reserve(ranks.size());
    for (std::size_t k = 0; k < ranks.size(); ++k) {
        if (runtimes[k] <= 0.0 || ranks[k] <= 0.0) {
            throw InvalidArgumentError(
                "classic_efficiencies: non-positive measurement");
        }
        out.push_back(100.0 * (t1 * x1) / (runtimes[k] * ranks[k]));
    }
    return out;
}

modeling::PerformanceModel model_speedup(
    const std::vector<double>& ranks, const std::vector<double>& runtimes,
    const modeling::ModelGenerator& generator) {
    return generator.fit(ranks, speedups(runtimes));
}

modeling::PerformanceModel model_efficiency(
    const std::vector<double>& ranks, const std::vector<double>& runtimes,
    const modeling::ModelGenerator& generator) {
    return generator.fit(ranks, efficiencies(ranks, runtimes));
}

}  // namespace extradeep::analysis
