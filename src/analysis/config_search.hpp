#pragma once

#include <limits>
#include <optional>
#include <vector>

#include <functional>

#include "analysis/cost.hpp"
#include "modeling/model.hpp"
#include "parallel/strategy.hpp"

namespace extradeep::analysis {

/// User-set limits for the cost-effectiveness search (paper Sec. 3.3 /
/// Fig. 4: a fixed budget and/or a target training time).
struct ConfigSearchLimits {
    double max_time_s = std::numeric_limits<double>::infinity();
    double max_cost = std::numeric_limits<double>::infinity();
};

/// One evaluated candidate configuration.
struct ConfigCandidate {
    double ranks = 0.0;
    double time_s = 0.0;           ///< predicted training time per epoch
    double cost = 0.0;             ///< predicted cost per epoch (Eq. 14)
    double efficiency_pct = 0.0;   ///< Eq. 13 efficiency vs. smallest candidate
    bool feasible_time = false;
    bool feasible_cost = false;

    bool feasible() const { return feasible_time && feasible_cost; }
};

/// Result of the search: every candidate with its predictions and
/// feasibility, plus the index of the most cost-effective feasible one
/// (nullopt if no candidate meets both limits).
struct ConfigSearchResult {
    std::vector<ConfigCandidate> candidates;
    std::optional<std::size_t> best;
};

/// Identifies the most cost-effective training configuration (Sec. 3.3)
/// using the fitted runtime model:
///  - every candidate rank count is priced with `cost` and checked against
///    the limits ("technically possible" vs "economically feasible"),
///  - under weak scaling the feasible candidate with the smallest resource
///    allocation wins (always the cheapest and most efficient),
///  - under strong scaling the feasible candidate with the highest parallel
///    efficiency (Eq. 13, relative to the smallest candidate) wins.
/// Throws InvalidArgumentError on an empty candidate list.
/// Runtime model as a callable: ranks -> predicted training time per epoch.
/// Accepts any fitted model (PerformanceModel, EpochModel) via a lambda.
using RuntimeFn = std::function<double(double ranks)>;

ConfigSearchResult find_cost_effective_config(
    const RuntimeFn& runtime_model, const std::vector<double>& candidate_ranks,
    const CostFunction& cost, const ConfigSearchLimits& limits,
    parallel::ScalingMode scaling);

}  // namespace extradeep::analysis
