# Empty dependencies file for extradeep_trace.
# This may be replaced when dependencies are built.
