file(REMOVE_RECURSE
  "libextradeep_trace.a"
)
