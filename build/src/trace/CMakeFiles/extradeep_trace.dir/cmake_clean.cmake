file(REMOVE_RECURSE
  "CMakeFiles/extradeep_trace.dir/kernel.cpp.o"
  "CMakeFiles/extradeep_trace.dir/kernel.cpp.o.d"
  "CMakeFiles/extradeep_trace.dir/timeline.cpp.o"
  "CMakeFiles/extradeep_trace.dir/timeline.cpp.o.d"
  "libextradeep_trace.a"
  "libextradeep_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
