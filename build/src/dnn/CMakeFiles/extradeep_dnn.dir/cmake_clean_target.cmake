file(REMOVE_RECURSE
  "libextradeep_dnn.a"
)
