file(REMOVE_RECURSE
  "CMakeFiles/extradeep_dnn.dir/datasets.cpp.o"
  "CMakeFiles/extradeep_dnn.dir/datasets.cpp.o.d"
  "CMakeFiles/extradeep_dnn.dir/layer.cpp.o"
  "CMakeFiles/extradeep_dnn.dir/layer.cpp.o.d"
  "CMakeFiles/extradeep_dnn.dir/network.cpp.o"
  "CMakeFiles/extradeep_dnn.dir/network.cpp.o.d"
  "CMakeFiles/extradeep_dnn.dir/zoo.cpp.o"
  "CMakeFiles/extradeep_dnn.dir/zoo.cpp.o.d"
  "libextradeep_dnn.a"
  "libextradeep_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
