
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/datasets.cpp" "src/dnn/CMakeFiles/extradeep_dnn.dir/datasets.cpp.o" "gcc" "src/dnn/CMakeFiles/extradeep_dnn.dir/datasets.cpp.o.d"
  "/root/repo/src/dnn/layer.cpp" "src/dnn/CMakeFiles/extradeep_dnn.dir/layer.cpp.o" "gcc" "src/dnn/CMakeFiles/extradeep_dnn.dir/layer.cpp.o.d"
  "/root/repo/src/dnn/network.cpp" "src/dnn/CMakeFiles/extradeep_dnn.dir/network.cpp.o" "gcc" "src/dnn/CMakeFiles/extradeep_dnn.dir/network.cpp.o.d"
  "/root/repo/src/dnn/zoo.cpp" "src/dnn/CMakeFiles/extradeep_dnn.dir/zoo.cpp.o" "gcc" "src/dnn/CMakeFiles/extradeep_dnn.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/extradeep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
