# Empty compiler generated dependencies file for extradeep_dnn.
# This may be replaced when dependencies are built.
