file(REMOVE_RECURSE
  "libextradeep_analysis.a"
)
