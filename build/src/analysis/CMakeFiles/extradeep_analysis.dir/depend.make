# Empty dependencies file for extradeep_analysis.
# This may be replaced when dependencies are built.
