
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bottleneck.cpp" "src/analysis/CMakeFiles/extradeep_analysis.dir/bottleneck.cpp.o" "gcc" "src/analysis/CMakeFiles/extradeep_analysis.dir/bottleneck.cpp.o.d"
  "/root/repo/src/analysis/config_search.cpp" "src/analysis/CMakeFiles/extradeep_analysis.dir/config_search.cpp.o" "gcc" "src/analysis/CMakeFiles/extradeep_analysis.dir/config_search.cpp.o.d"
  "/root/repo/src/analysis/cost.cpp" "src/analysis/CMakeFiles/extradeep_analysis.dir/cost.cpp.o" "gcc" "src/analysis/CMakeFiles/extradeep_analysis.dir/cost.cpp.o.d"
  "/root/repo/src/analysis/speedup.cpp" "src/analysis/CMakeFiles/extradeep_analysis.dir/speedup.cpp.o" "gcc" "src/analysis/CMakeFiles/extradeep_analysis.dir/speedup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/modeling/CMakeFiles/extradeep_modeling.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/extradeep_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/extradeep_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/extradeep_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/extradeep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
