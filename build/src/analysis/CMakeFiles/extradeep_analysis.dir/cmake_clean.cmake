file(REMOVE_RECURSE
  "CMakeFiles/extradeep_analysis.dir/bottleneck.cpp.o"
  "CMakeFiles/extradeep_analysis.dir/bottleneck.cpp.o.d"
  "CMakeFiles/extradeep_analysis.dir/config_search.cpp.o"
  "CMakeFiles/extradeep_analysis.dir/config_search.cpp.o.d"
  "CMakeFiles/extradeep_analysis.dir/cost.cpp.o"
  "CMakeFiles/extradeep_analysis.dir/cost.cpp.o.d"
  "CMakeFiles/extradeep_analysis.dir/speedup.cpp.o"
  "CMakeFiles/extradeep_analysis.dir/speedup.cpp.o.d"
  "libextradeep_analysis.a"
  "libextradeep_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
