file(REMOVE_RECURSE
  "CMakeFiles/extradeep_modeling.dir/fitter.cpp.o"
  "CMakeFiles/extradeep_modeling.dir/fitter.cpp.o.d"
  "CMakeFiles/extradeep_modeling.dir/model.cpp.o"
  "CMakeFiles/extradeep_modeling.dir/model.cpp.o.d"
  "CMakeFiles/extradeep_modeling.dir/search_space.cpp.o"
  "CMakeFiles/extradeep_modeling.dir/search_space.cpp.o.d"
  "libextradeep_modeling.a"
  "libextradeep_modeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_modeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
