# Empty dependencies file for extradeep_modeling.
# This may be replaced when dependencies are built.
