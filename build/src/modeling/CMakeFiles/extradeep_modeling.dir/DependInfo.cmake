
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modeling/fitter.cpp" "src/modeling/CMakeFiles/extradeep_modeling.dir/fitter.cpp.o" "gcc" "src/modeling/CMakeFiles/extradeep_modeling.dir/fitter.cpp.o.d"
  "/root/repo/src/modeling/model.cpp" "src/modeling/CMakeFiles/extradeep_modeling.dir/model.cpp.o" "gcc" "src/modeling/CMakeFiles/extradeep_modeling.dir/model.cpp.o.d"
  "/root/repo/src/modeling/search_space.cpp" "src/modeling/CMakeFiles/extradeep_modeling.dir/search_space.cpp.o" "gcc" "src/modeling/CMakeFiles/extradeep_modeling.dir/search_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/extradeep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
