file(REMOVE_RECURSE
  "libextradeep_modeling.a"
)
