file(REMOVE_RECURSE
  "libextradeep_core.a"
)
