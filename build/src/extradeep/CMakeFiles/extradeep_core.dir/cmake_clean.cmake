file(REMOVE_RECURSE
  "CMakeFiles/extradeep_core.dir/models.cpp.o"
  "CMakeFiles/extradeep_core.dir/models.cpp.o.d"
  "CMakeFiles/extradeep_core.dir/runner.cpp.o"
  "CMakeFiles/extradeep_core.dir/runner.cpp.o.d"
  "libextradeep_core.a"
  "libextradeep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
