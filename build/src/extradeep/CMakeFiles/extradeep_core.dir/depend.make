# Empty dependencies file for extradeep_core.
# This may be replaced when dependencies are built.
