# Empty dependencies file for extradeep_parallel.
# This may be replaced when dependencies are built.
