file(REMOVE_RECURSE
  "libextradeep_parallel.a"
)
