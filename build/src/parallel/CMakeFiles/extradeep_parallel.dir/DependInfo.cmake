
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/comm_plan.cpp" "src/parallel/CMakeFiles/extradeep_parallel.dir/comm_plan.cpp.o" "gcc" "src/parallel/CMakeFiles/extradeep_parallel.dir/comm_plan.cpp.o.d"
  "/root/repo/src/parallel/steps.cpp" "src/parallel/CMakeFiles/extradeep_parallel.dir/steps.cpp.o" "gcc" "src/parallel/CMakeFiles/extradeep_parallel.dir/steps.cpp.o.d"
  "/root/repo/src/parallel/strategy.cpp" "src/parallel/CMakeFiles/extradeep_parallel.dir/strategy.cpp.o" "gcc" "src/parallel/CMakeFiles/extradeep_parallel.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/extradeep_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/extradeep_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/extradeep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
