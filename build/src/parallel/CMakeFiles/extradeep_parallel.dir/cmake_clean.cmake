file(REMOVE_RECURSE
  "CMakeFiles/extradeep_parallel.dir/comm_plan.cpp.o"
  "CMakeFiles/extradeep_parallel.dir/comm_plan.cpp.o.d"
  "CMakeFiles/extradeep_parallel.dir/steps.cpp.o"
  "CMakeFiles/extradeep_parallel.dir/steps.cpp.o.d"
  "CMakeFiles/extradeep_parallel.dir/strategy.cpp.o"
  "CMakeFiles/extradeep_parallel.dir/strategy.cpp.o.d"
  "libextradeep_parallel.a"
  "libextradeep_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
