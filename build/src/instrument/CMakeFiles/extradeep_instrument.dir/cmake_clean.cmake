file(REMOVE_RECURSE
  "CMakeFiles/extradeep_instrument.dir/pyinstrument.cpp.o"
  "CMakeFiles/extradeep_instrument.dir/pyinstrument.cpp.o.d"
  "libextradeep_instrument.a"
  "libextradeep_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
