file(REMOVE_RECURSE
  "libextradeep_instrument.a"
)
