# Empty compiler generated dependencies file for extradeep_instrument.
# This may be replaced when dependencies are built.
