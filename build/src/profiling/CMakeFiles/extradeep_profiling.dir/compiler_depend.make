# Empty compiler generated dependencies file for extradeep_profiling.
# This may be replaced when dependencies are built.
