file(REMOVE_RECURSE
  "CMakeFiles/extradeep_profiling.dir/edp_io.cpp.o"
  "CMakeFiles/extradeep_profiling.dir/edp_io.cpp.o.d"
  "CMakeFiles/extradeep_profiling.dir/profiler.cpp.o"
  "CMakeFiles/extradeep_profiling.dir/profiler.cpp.o.d"
  "CMakeFiles/extradeep_profiling.dir/sampling.cpp.o"
  "CMakeFiles/extradeep_profiling.dir/sampling.cpp.o.d"
  "libextradeep_profiling.a"
  "libextradeep_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
