file(REMOVE_RECURSE
  "libextradeep_profiling.a"
)
