
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/edp_io.cpp" "src/profiling/CMakeFiles/extradeep_profiling.dir/edp_io.cpp.o" "gcc" "src/profiling/CMakeFiles/extradeep_profiling.dir/edp_io.cpp.o.d"
  "/root/repo/src/profiling/profiler.cpp" "src/profiling/CMakeFiles/extradeep_profiling.dir/profiler.cpp.o" "gcc" "src/profiling/CMakeFiles/extradeep_profiling.dir/profiler.cpp.o.d"
  "/root/repo/src/profiling/sampling.cpp" "src/profiling/CMakeFiles/extradeep_profiling.dir/sampling.cpp.o" "gcc" "src/profiling/CMakeFiles/extradeep_profiling.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/extradeep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/extradeep_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/extradeep_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/extradeep_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/extradeep_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/extradeep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
