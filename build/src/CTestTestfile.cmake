# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("trace")
subdirs("hw")
subdirs("dnn")
subdirs("parallel")
subdirs("sim")
subdirs("profiling")
subdirs("aggregation")
subdirs("modeling")
subdirs("analysis")
subdirs("instrument")
subdirs("extradeep")
