# Empty dependencies file for extradeep_common.
# This may be replaced when dependencies are built.
