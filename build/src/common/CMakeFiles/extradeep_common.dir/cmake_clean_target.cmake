file(REMOVE_RECURSE
  "libextradeep_common.a"
)
