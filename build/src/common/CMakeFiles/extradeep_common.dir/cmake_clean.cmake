file(REMOVE_RECURSE
  "CMakeFiles/extradeep_common.dir/format.cpp.o"
  "CMakeFiles/extradeep_common.dir/format.cpp.o.d"
  "CMakeFiles/extradeep_common.dir/linalg.cpp.o"
  "CMakeFiles/extradeep_common.dir/linalg.cpp.o.d"
  "CMakeFiles/extradeep_common.dir/rng.cpp.o"
  "CMakeFiles/extradeep_common.dir/rng.cpp.o.d"
  "CMakeFiles/extradeep_common.dir/stats.cpp.o"
  "CMakeFiles/extradeep_common.dir/stats.cpp.o.d"
  "CMakeFiles/extradeep_common.dir/student_t.cpp.o"
  "CMakeFiles/extradeep_common.dir/student_t.cpp.o.d"
  "CMakeFiles/extradeep_common.dir/table.cpp.o"
  "CMakeFiles/extradeep_common.dir/table.cpp.o.d"
  "libextradeep_common.a"
  "libextradeep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
