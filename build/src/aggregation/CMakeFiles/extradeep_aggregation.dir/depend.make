# Empty dependencies file for extradeep_aggregation.
# This may be replaced when dependencies are built.
