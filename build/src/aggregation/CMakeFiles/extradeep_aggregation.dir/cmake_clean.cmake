file(REMOVE_RECURSE
  "CMakeFiles/extradeep_aggregation.dir/aggregate.cpp.o"
  "CMakeFiles/extradeep_aggregation.dir/aggregate.cpp.o.d"
  "CMakeFiles/extradeep_aggregation.dir/experiment.cpp.o"
  "CMakeFiles/extradeep_aggregation.dir/experiment.cpp.o.d"
  "CMakeFiles/extradeep_aggregation.dir/metrics.cpp.o"
  "CMakeFiles/extradeep_aggregation.dir/metrics.cpp.o.d"
  "libextradeep_aggregation.a"
  "libextradeep_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
