file(REMOVE_RECURSE
  "libextradeep_aggregation.a"
)
