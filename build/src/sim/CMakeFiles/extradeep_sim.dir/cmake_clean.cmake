file(REMOVE_RECURSE
  "CMakeFiles/extradeep_sim.dir/kernel_schedule.cpp.o"
  "CMakeFiles/extradeep_sim.dir/kernel_schedule.cpp.o.d"
  "CMakeFiles/extradeep_sim.dir/noise.cpp.o"
  "CMakeFiles/extradeep_sim.dir/noise.cpp.o.d"
  "CMakeFiles/extradeep_sim.dir/simulator.cpp.o"
  "CMakeFiles/extradeep_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/extradeep_sim.dir/workload.cpp.o"
  "CMakeFiles/extradeep_sim.dir/workload.cpp.o.d"
  "libextradeep_sim.a"
  "libextradeep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
