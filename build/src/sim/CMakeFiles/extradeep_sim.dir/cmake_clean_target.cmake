file(REMOVE_RECURSE
  "libextradeep_sim.a"
)
