
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/kernel_schedule.cpp" "src/sim/CMakeFiles/extradeep_sim.dir/kernel_schedule.cpp.o" "gcc" "src/sim/CMakeFiles/extradeep_sim.dir/kernel_schedule.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/sim/CMakeFiles/extradeep_sim.dir/noise.cpp.o" "gcc" "src/sim/CMakeFiles/extradeep_sim.dir/noise.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/extradeep_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/extradeep_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/extradeep_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/extradeep_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/extradeep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/extradeep_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/extradeep_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/extradeep_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/extradeep_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
