# Empty compiler generated dependencies file for extradeep_sim.
# This may be replaced when dependencies are built.
