# Empty compiler generated dependencies file for extradeep_hw.
# This may be replaced when dependencies are built.
