file(REMOVE_RECURSE
  "libextradeep_hw.a"
)
