file(REMOVE_RECURSE
  "CMakeFiles/extradeep_hw.dir/gpu.cpp.o"
  "CMakeFiles/extradeep_hw.dir/gpu.cpp.o.d"
  "CMakeFiles/extradeep_hw.dir/network.cpp.o"
  "CMakeFiles/extradeep_hw.dir/network.cpp.o.d"
  "CMakeFiles/extradeep_hw.dir/system.cpp.o"
  "CMakeFiles/extradeep_hw.dir/system.cpp.o.d"
  "libextradeep_hw.a"
  "libextradeep_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extradeep_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
