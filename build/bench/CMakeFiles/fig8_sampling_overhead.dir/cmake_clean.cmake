file(REMOVE_RECURSE
  "CMakeFiles/fig8_sampling_overhead.dir/fig8_sampling_overhead.cpp.o"
  "CMakeFiles/fig8_sampling_overhead.dir/fig8_sampling_overhead.cpp.o.d"
  "fig8_sampling_overhead"
  "fig8_sampling_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sampling_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
