# Empty dependencies file for fig5_parallel_strategies.
# This may be replaced when dependencies are built.
