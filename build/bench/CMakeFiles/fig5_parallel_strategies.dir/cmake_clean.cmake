file(REMOVE_RECURSE
  "CMakeFiles/fig5_parallel_strategies.dir/fig5_parallel_strategies.cpp.o"
  "CMakeFiles/fig5_parallel_strategies.dir/fig5_parallel_strategies.cpp.o.d"
  "fig5_parallel_strategies"
  "fig5_parallel_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_parallel_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
