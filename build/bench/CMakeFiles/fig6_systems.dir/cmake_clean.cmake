file(REMOVE_RECURSE
  "CMakeFiles/fig6_systems.dir/fig6_systems.cpp.o"
  "CMakeFiles/fig6_systems.dir/fig6_systems.cpp.o.d"
  "fig6_systems"
  "fig6_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
