# Empty compiler generated dependencies file for fig6_systems.
# This may be replaced when dependencies are built.
