file(REMOVE_RECURSE
  "CMakeFiles/fig4_cost_effectiveness.dir/fig4_cost_effectiveness.cpp.o"
  "CMakeFiles/fig4_cost_effectiveness.dir/fig4_cost_effectiveness.cpp.o.d"
  "fig4_cost_effectiveness"
  "fig4_cost_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cost_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
