# Empty dependencies file for fig4_cost_effectiveness.
# This may be replaced when dependencies are built.
