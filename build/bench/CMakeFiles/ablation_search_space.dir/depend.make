# Empty dependencies file for ablation_search_space.
# This may be replaced when dependencies are built.
