file(REMOVE_RECURSE
  "CMakeFiles/ablation_search_space.dir/ablation_search_space.cpp.o"
  "CMakeFiles/ablation_search_space.dir/ablation_search_space.cpp.o.d"
  "ablation_search_space"
  "ablation_search_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
