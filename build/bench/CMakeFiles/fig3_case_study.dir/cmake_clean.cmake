file(REMOVE_RECURSE
  "CMakeFiles/fig3_case_study.dir/fig3_case_study.cpp.o"
  "CMakeFiles/fig3_case_study.dir/fig3_case_study.cpp.o.d"
  "fig3_case_study"
  "fig3_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
