# Empty dependencies file for ablation_modeling_points.
# This may be replaced when dependencies are built.
