file(REMOVE_RECURSE
  "CMakeFiles/ablation_modeling_points.dir/ablation_modeling_points.cpp.o"
  "CMakeFiles/ablation_modeling_points.dir/ablation_modeling_points.cpp.o.d"
  "ablation_modeling_points"
  "ablation_modeling_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modeling_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
