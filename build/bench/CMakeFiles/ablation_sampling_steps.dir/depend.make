# Empty dependencies file for ablation_sampling_steps.
# This may be replaced when dependencies are built.
