file(REMOVE_RECURSE
  "CMakeFiles/ablation_sampling_steps.dir/ablation_sampling_steps.cpp.o"
  "CMakeFiles/ablation_sampling_steps.dir/ablation_sampling_steps.cpp.o.d"
  "ablation_sampling_steps"
  "ablation_sampling_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampling_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
