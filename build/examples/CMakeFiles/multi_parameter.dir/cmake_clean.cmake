file(REMOVE_RECURSE
  "CMakeFiles/multi_parameter.dir/multi_parameter.cpp.o"
  "CMakeFiles/multi_parameter.dir/multi_parameter.cpp.o.d"
  "multi_parameter"
  "multi_parameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_parameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
