# Empty dependencies file for multi_parameter.
# This may be replaced when dependencies are built.
