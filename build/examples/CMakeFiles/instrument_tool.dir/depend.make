# Empty dependencies file for instrument_tool.
# This may be replaced when dependencies are built.
