
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/instrument_tool.cpp" "examples/CMakeFiles/instrument_tool.dir/instrument_tool.cpp.o" "gcc" "examples/CMakeFiles/instrument_tool.dir/instrument_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extradeep/CMakeFiles/extradeep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/aggregation/CMakeFiles/extradeep_aggregation.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/extradeep_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/extradeep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/extradeep_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/extradeep_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/modeling/CMakeFiles/extradeep_modeling.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/extradeep_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/extradeep_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/extradeep_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/extradeep_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/extradeep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
