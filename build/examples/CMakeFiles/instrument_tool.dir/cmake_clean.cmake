file(REMOVE_RECURSE
  "CMakeFiles/instrument_tool.dir/instrument_tool.cpp.o"
  "CMakeFiles/instrument_tool.dir/instrument_tool.cpp.o.d"
  "instrument_tool"
  "instrument_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
