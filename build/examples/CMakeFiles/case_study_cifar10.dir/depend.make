# Empty dependencies file for case_study_cifar10.
# This may be replaced when dependencies are built.
