file(REMOVE_RECURSE
  "CMakeFiles/case_study_cifar10.dir/case_study_cifar10.cpp.o"
  "CMakeFiles/case_study_cifar10.dir/case_study_cifar10.cpp.o.d"
  "case_study_cifar10"
  "case_study_cifar10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_cifar10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
