# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_student_t[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_table_format[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_dnn[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_profiling[1]_include.cmake")
include("/root/repo/build/tests/test_aggregation[1]_include.cmake")
include("/root/repo/build/tests/test_modeling[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_instrument[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
