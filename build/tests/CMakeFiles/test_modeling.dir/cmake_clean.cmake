file(REMOVE_RECURSE
  "CMakeFiles/test_modeling.dir/test_modeling.cpp.o"
  "CMakeFiles/test_modeling.dir/test_modeling.cpp.o.d"
  "test_modeling"
  "test_modeling.pdb"
  "test_modeling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
