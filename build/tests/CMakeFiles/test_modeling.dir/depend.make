# Empty dependencies file for test_modeling.
# This may be replaced when dependencies are built.
