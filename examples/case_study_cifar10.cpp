// The paper's running case study (Secs. 2-3), end to end: train ResNet-50 on
// CIFAR-10 with TensorFlow+Horovod-style data parallelism on the DEEP
// system, profile five small configurations with the efficient sampling
// strategy, create performance models, and answer the five developer
// questions Q1-Q5 from Sec. 1.1.
//
// This example exercises the full toolchain, including the NVTX
// instrumentation step and the EDP profile files a real deployment would
// archive.

#include <cstdio>
#include <string>

#include "analysis/bottleneck.hpp"
#include "analysis/config_search.hpp"
#include "analysis/cost.hpp"
#include "analysis/speedup.hpp"
#include "common/format.hpp"
#include "extradeep/models.hpp"
#include "extradeep/runner.hpp"
#include "instrument/pyinstrument.hpp"
#include "profiling/edp_io.hpp"

using namespace extradeep;

int main() {
    // ------------------------------------------------------------------
    // Step 1 (Fig. 1): instrument the training script. Extra-Deep's static
    // analyzer injects nvtx.annotate decorators and epoch/step ranges.
    // ------------------------------------------------------------------
    const std::string training_script =
        "def train(self):\n"
        "    for epoch in range(EPOCHS):\n"
        "        for b, (images, labels) in enumerate(train_ds.take(s)):\n"
        "            loss_value = training_step(images, labels, b == 0)\n";
    const auto instrumented = instrument::instrument_python(training_script);
    std::printf("--- step 1: instrumentation (%d functions, %d loops) ---\n%s\n",
                instrumented.functions_annotated, instrumented.loops_annotated,
                instrumented.source.c_str());

    // ------------------------------------------------------------------
    // Steps 2-4: profile five configurations (5 reps each, 5 train + 5
    // validation steps of 2 epochs, warm-up discarded), aggregate, model.
    // ------------------------------------------------------------------
    ExperimentSpec spec;
    spec.dataset = "CIFAR-10";
    spec.system = hw::SystemSpec::deep();
    spec.strategy = parallel::StrategyKind::Data;
    spec.scaling = parallel::ScalingMode::Weak;
    spec.batch_per_worker = 256;
    spec.modeling_ranks = {2, 4, 6, 10, 12};
    spec.evaluation_ranks = {16, 24, 32, 40, 64};
    spec.repetitions = 5;
    std::printf("--- steps 2-4: %s ---\n", spec.describe().c_str());
    const ExperimentRunner runner(spec);

    // Demonstrate the on-disk profile format a real deployment would keep.
    {
        const sim::TrainingSimulator simulator(runner.workload_for(4));
        const profiling::Profiler profiler(spec.sampling);
        const auto run = profiler.profile(simulator, {{"x1", 4.0}}, 0);
        const std::string path = "/tmp/extradeep_cifar10_x4_r0.edp";
        profiling::write_edp_file(path, run);
        const auto back = profiling::read_edp_file(path);
        std::printf("wrote %s (%zu ranks, %zu events on rank 0)\n\n",
                    path.c_str(), back.ranks.size(),
                    back.ranks.front().events.size());
    }

    const ExperimentResult result = runner.run();

    // ------------------------------------------------------------------
    // Q1: how long does one epoch take for a given allocation?
    // ------------------------------------------------------------------
    std::printf("Q1. T_epoch(x1) = %s\n", result.epoch_time.to_string().c_str());
    std::printf("    T_epoch(40 ranks) = %.1f s\n\n",
                result.epoch_time.evaluate(40));

    // ------------------------------------------------------------------
    // Q2: how do runtime and efficiency change with the configuration?
    // ------------------------------------------------------------------
    std::printf("Q2. scaling behaviour (weak scaling, ideal would be flat):\n");
    for (const int x : {2, 8, 16, 32, 64}) {
        std::printf("    x1=%-3d predicted %.1f s/epoch\n", x,
                    result.epoch_time.evaluate(x));
    }
    {
        const auto eff = analysis::efficiencies(
            std::vector<double>{2, 8, 16, 32, 64},
            std::vector<double>{result.epoch_time.evaluate(2),
                                result.epoch_time.evaluate(8),
                                result.epoch_time.evaluate(16),
                                result.epoch_time.evaluate(32),
                                result.epoch_time.evaluate(64)});
        std::printf("    parallel efficiency (Eq. 13) at 64 ranks: %.1f%%\n\n",
                    eff.back());
    }

    // ------------------------------------------------------------------
    // Q3: latent bottlenecks - rank kernel models by asymptotic growth.
    // ------------------------------------------------------------------
    const auto kernels = model_kernels(result.data, result.step_math_fn,
                                       {aggregation::Metric::Time});
    std::vector<analysis::NamedModel> runtime_models;
    for (const auto& k : kernels) {
        runtime_models.push_back({k.name, k.model.train_step_model()});
    }
    const auto ranked = analysis::rank_by_growth(runtime_models, 64.0);
    std::printf("Q3. fastest-growing kernels (per training step):\n");
    for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
        std::printf("    %-28s %-18s %.4f s at x1=64\n", ranked[i].name.c_str(),
                    ranked[i].growth.c_str(), ranked[i].predicted_at_target);
    }
    const auto& comm =
        result.phase_time[static_cast<int>(trace::Phase::Communication)];
    std::printf("    communication per epoch: %.1f s at x1=2 -> %.1f s at x1=64\n\n",
                comm.evaluate(2), comm.evaluate(64));

    // ------------------------------------------------------------------
    // Q4: cost per epoch (Eq. 14) for a given configuration.
    // ------------------------------------------------------------------
    const auto cost_fn = analysis::core_hours_cost(spec.system.cores_per_rank);
    std::printf("Q4. cost per epoch: C(32 ranks) = %.2f core hours\n\n",
                cost_fn(result.epoch_time.evaluate(32), 32));

    // ------------------------------------------------------------------
    // Q5: the most cost-effective configuration for a budget/time frame.
    // ------------------------------------------------------------------
    analysis::ConfigSearchLimits limits;
    limits.max_time_s = 200.0;
    limits.max_cost = 2.0;  // core hours per epoch
    const auto search = analysis::find_cost_effective_config(
        [&](double x) { return result.epoch_time.evaluate(x); },
        {2, 4, 8, 16, 32, 64}, cost_fn, limits, spec.scaling);
    std::printf("Q5. budget %.1f core hours/epoch, max %.0f s/epoch:\n",
                limits.max_cost, limits.max_time_s);
    if (search.best) {
        const auto& best = search.candidates[*search.best];
        std::printf("    most cost-effective configuration: x1 = %.0f"
                    " (%.1f s, %.2f core hours)\n",
                    best.ranks, best.time_s, best.cost);
    } else {
        std::printf("    no configuration satisfies both limits\n");
    }
    return 0;
}
