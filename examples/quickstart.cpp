// Quickstart: model the training time per epoch of ResNet-50/CIFAR-10 on the
// DEEP system with data parallelism (the paper's running case study), then
// predict performance at unmeasured scales.
//
// Pipeline: simulate + profile 5 modeling configurations -> aggregate the
// measurements (Fig. 2) -> fit a PMNF model (Eq. 5-7) -> extrapolate.

#include <cstdio>

#include "common/format.hpp"
#include "extradeep/models.hpp"
#include "extradeep/runner.hpp"

using namespace extradeep;

int main() {
    ExperimentSpec spec;
    spec.dataset = "CIFAR-10";
    spec.system = hw::SystemSpec::deep();
    spec.strategy = parallel::StrategyKind::Data;
    spec.scaling = parallel::ScalingMode::Weak;
    spec.batch_per_worker = 256;
    spec.modeling_ranks = {2, 4, 6, 10, 12};
    spec.evaluation_ranks = {14, 16, 20, 24, 32, 40, 48, 56, 64};
    spec.repetitions = 5;

    std::printf("Experiment: %s\n", spec.describe().c_str());
    std::printf("System:     %s\n\n", spec.system.describe().c_str());

    ExperimentRunner runner(spec);
    const ExperimentResult result = runner.run();

    std::printf("T_epoch(x1) = %s   [fit SMAPE %.2f%%, R^2 %.4f]\n\n",
                result.epoch_time.to_string().c_str(),
                result.epoch_time.quality().fit_smape,
                result.epoch_time.quality().r_squared);

    std::printf("%-6s %-12s %-12s %-8s\n", "x1", "predicted", "measured",
                "error");
    for (const int x : spec.modeling_ranks) {
        const double pred = result.epoch_time.evaluate(x);
        const double meas = runner.measured_epoch_time(x);
        std::printf("%-6d %-12.2f %-12.2f %6.1f%%  (modeling point)\n", x, pred,
                    meas, 100.0 * std::abs(pred - meas) / meas);
    }
    for (const int x : spec.evaluation_ranks) {
        const double pred = result.epoch_time.evaluate(x);
        const double meas = runner.measured_epoch_time(x);
        std::printf("%-6d %-12.2f %-12.2f %6.1f%%\n", x, pred, meas,
                    100.0 * std::abs(pred - meas) / meas);
    }

    std::printf("\nPhase models (per epoch):\n");
    const char* phase_names[] = {"computation  ", "communication", "memory ops  "};
    for (int p = 0; p < trace::kPhaseCount; ++p) {
        std::printf("  %s: %s\n", phase_names[p],
                    result.phase_time[p].to_string().c_str());
    }
    return 0;
}
