// Capacity planning with Extra-Deep (Sec. 3.3): a team must train
// EfficientNet-B0 on ImageNet on the JURECA system under a fixed compute
// budget and a deadline. The example models the training time from cheap
// small-scale profiles, converts core hours into money, and sweeps several
// budget/deadline scenarios to find the cost-effective allocation for each.

#include <cstdio>

#include "analysis/config_search.hpp"
#include "analysis/cost.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "extradeep/runner.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    ExperimentSpec spec;
    spec.dataset = "ImageNet";
    spec.system = hw::SystemSpec::jureca();
    spec.strategy = parallel::StrategyKind::Data;
    spec.scaling = parallel::ScalingMode::Strong;  // fixed dataset, more GPUs
    spec.batch_per_worker = 64;
    spec.modeling_ranks = {8, 16, 24, 32, 40};  // 2-10 nodes, cheap to measure
    spec.evaluation_ranks = {};
    spec.repetitions = 5;

    std::printf("Capacity planning: %s\n", spec.describe().c_str());
    std::printf("System: %s\n\n", spec.system.describe().c_str());

    const ExperimentRunner runner(spec);
    const ExperimentResult result = runner.run();
    std::printf("T_epoch(x1) = %s\n\n", result.epoch_time.to_string().c_str());

    // Eq. 14 in core hours, then converted to money. Extra-Deep supports
    // custom cost formulas; assume 0.007 EUR per core hour (typical academic
    // HPC accounting).
    constexpr double kEurPerCoreHour = 0.007;
    const auto core_hours = analysis::core_hours_cost(spec.system.cores_per_rank);
    const analysis::CostFunction euros = [&](double runtime_s, double ranks) {
        return core_hours(runtime_s, ranks) * kEurPerCoreHour;
    };

    const std::vector<double> candidates = {8,  16,  32,  64, 96,
                                            128, 160, 192, 224, 256};
    constexpr int kEpochs = 90;  // a full EfficientNet training run

    struct Scenario {
        const char* name;
        double deadline_h;   // wall-clock limit for the whole run
        double budget_eur;   // money limit for the whole run
    };
    const Scenario scenarios[] = {
        {"generous budget, tight deadline", 24.0, 10000.0},
        {"tight budget, loose deadline", 120.0, 600.0},
        {"balanced", 48.0, 1200.0},
        {"impossible", 2.0, 50.0},
    };

    for (const auto& sc : scenarios) {
        analysis::ConfigSearchLimits limits;
        limits.max_time_s = sc.deadline_h * 3600.0 / kEpochs;  // per epoch
        limits.max_cost = sc.budget_eur / kEpochs;
        const auto search = analysis::find_cost_effective_config(
            [&](double x) { return result.epoch_time.evaluate(x); },
            candidates, euros, limits, spec.scaling);

        std::printf("--- scenario: %s (deadline %.0f h, budget %.0f EUR) ---\n",
                    sc.name, sc.deadline_h, sc.budget_eur);
        Table table({"ranks", "nodes", "epoch [s]", "run [h]", "run [EUR]",
                     "eff", "feasible", "chosen"});
        for (std::size_t i = 0; i < search.candidates.size(); ++i) {
            const auto& c = search.candidates[i];
            table.add_row({fmtx::fixed(c.ranks, 0),
                           fmtx::fixed(c.ranks / spec.system.gpus_per_node, 0),
                           fmtx::fixed(c.time_s, 1),
                           fmtx::fixed(c.time_s * kEpochs / 3600.0, 1),
                           fmtx::fixed(c.cost * kEpochs, 0),
                           fmtx::percent(c.efficiency_pct, 0),
                           c.feasible() ? "yes" : "no",
                           search.best && *search.best == i ? "<==" : ""});
        }
        std::printf("%s", table.to_string().c_str());
        if (!search.best) {
            std::printf("no feasible configuration - relax the deadline or "
                        "increase the budget\n");
        }
        std::printf("\n");
    }
    return 0;
}
