// Multi-parameter modeling (Sec. 2.3): the paper defines measurement points
// P(x1, x2, ...) over several execution parameters - e.g. the number of MPI
// ranks x1 and the batch size per worker x2 - but evaluates only x1 in
// depth. This example exercises the multi-parameter PMNF path end to end:
// measure a 5x5 grid of (ranks, batch) configurations of ResNet-50/CIFAR-10
// on DEEP, fit a two-parameter model of the time per training step, and
// predict unmeasured combinations.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "modeling/fitter.hpp"
#include "sim/simulator.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

namespace {

/// Median measured time per training step for one (ranks, batch) point.
double measured_step_time(int ranks, int batch) {
    const sim::Workload w = sim::Workload::make(
        "CIFAR-10", hw::SystemSpec::deep(),
        parallel::ParallelConfig::data(ranks), parallel::ScalingMode::Weak,
        batch);
    const sim::TrainingSimulator simulator(w);
    std::vector<double> reps;
    for (std::uint64_t rep = 0; rep < 5; ++rep) {
        const auto m = simulator.measure_epoch_typical(
            mix64(0x4d505245ULL, mix64(ranks, mix64(batch, rep))));
        reps.push_back(m.wall_time /
                       static_cast<double>(simulator.step_math().train_steps +
                                           simulator.step_math().val_steps));
    }
    return stats::median(reps);
}

}  // namespace

int main() {
    const std::vector<int> ranks_grid = {2, 4, 6, 8, 10};
    const std::vector<int> batch_grid = {32, 64, 128, 256, 512};

    std::printf("Two-parameter experiment: P(x1 = ranks, x2 = batch size)\n");
    std::printf("ResNet-50 / CIFAR-10 on DEEP, data parallelism, weak scaling\n\n");

    std::vector<std::vector<double>> points;
    std::vector<double> values;
    for (const int r : ranks_grid) {
        for (const int b : batch_grid) {
            points.push_back({static_cast<double>(r), static_cast<double>(b)});
            values.push_back(measured_step_time(r, b));
        }
    }
    std::printf("measured %zu grid points (5 reps each)\n\n", points.size());

    const modeling::ModelGenerator generator;
    const modeling::PerformanceModel model =
        generator.fit(points, values, {"x1", "x2"});
    std::printf("t_step(x1, x2) = %s\n", model.to_string().c_str());
    std::printf("fit SMAPE %.2f%%, R^2 %.4f, %d hypotheses searched\n\n",
                model.quality().fit_smape, model.quality().r_squared,
                model.quality().hypotheses_searched);

    // Validate on unmeasured combinations, including extrapolation in both
    // parameters at once.
    Table table({"x1", "x2", "predicted", "measured", "err"});
    std::vector<double> errors;
    const std::vector<std::pair<int, int>> probes = {
        {12, 96}, {16, 256}, {24, 64}, {32, 384}, {48, 128}, {64, 256}};
    for (const auto& [r, b] : probes) {
        const std::vector<double> pt = {static_cast<double>(r),
                                        static_cast<double>(b)};
        const double pred = model.evaluate(pt);
        const double meas = measured_step_time(r, b);
        const double err = 100.0 * std::abs(pred - meas) / meas;
        errors.push_back(err);
        table.add_row({std::to_string(r), std::to_string(b),
                       fmtx::seconds(pred), fmtx::seconds(meas),
                       fmtx::percent(err)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("median prediction error on unmeasured (x1, x2) points: %s\n",
                fmtx::percent(stats::median(errors)).c_str());
    return 0;
}
