// Command-line wrapper around Extra-Deep's automated instrumentation tool
// (paper Fig. 1, step 1): injects NVTX annotations into Python training
// scripts so that Nsight Systems profiles carry the epoch/step marks the
// sampling strategy needs.
//
// Usage:
//   instrument_tool input.py output.py    # instrument a file
//   instrument_tool                       # run the built-in demo

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "instrument/pyinstrument.hpp"

using namespace extradeep;

int main(int argc, char** argv) {
    if (argc == 3) {
        try {
            const auto result =
                instrument::instrument_python_file(argv[1], argv[2]);
            std::printf("%s -> %s: %d function(s), %d loop(s) annotated%s\n",
                        argv[1], argv[2], result.functions_annotated,
                        result.loops_annotated,
                        result.import_added ? ", nvtx import added" : "");
            return 0;
        } catch (const Error& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    if (argc != 1) {
        std::fprintf(stderr, "usage: %s [input.py output.py]\n", argv[0]);
        return 2;
    }

    // Demo: the training loop from the paper's Fig. 1.
    const std::string demo =
        "import tensorflow as tf\n"
        "\n"
        "class Trainer:\n"
        "    def train(self):\n"
        "        for epoch in range(EPOCHS):\n"
        "            for b, (i, l) in enumerate(train_ds.take(s)):\n"
        "                loss_value = training_step(images, labels, b == 0)\n"
        "\n"
        "    def validate(self):\n"
        "        for batch in val_ds:\n"
        "            evaluate(batch)\n";
    std::printf("--- input ---\n%s\n", demo.c_str());
    const auto result = instrument::instrument_python(demo);
    std::printf("--- instrumented (%d functions, %d loops) ---\n%s",
                result.functions_annotated, result.loops_annotated,
                result.source.c_str());
    return 0;
}
