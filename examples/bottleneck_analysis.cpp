// Bottleneck hunting with kernel-level models (Sec. 3.1): model every
// instrumented kernel of the Speech Commands benchmark under pipeline
// parallelism on JURECA, rank the models by asymptotic growth, inspect the
// speedup/efficiency models, and show per-metric kernel predictions (visits
// and transferred bytes) - the analyses Extra-Deep automates that manual
// profiling tools do not.

#include <cstdio>

#include "analysis/bottleneck.hpp"
#include "analysis/speedup.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "extradeep/models.hpp"
#include "extradeep/runner.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    ExperimentSpec spec;
    spec.dataset = "Speech Commands";
    spec.system = hw::SystemSpec::jureca();
    spec.strategy = parallel::StrategyKind::Pipeline;
    spec.model_parallel_degree = 4;
    spec.scaling = parallel::ScalingMode::Weak;
    spec.batch_per_worker = 256;
    spec.modeling_ranks = {8, 16, 24, 32, 40};
    spec.evaluation_ranks = {};
    spec.repetitions = 5;
    std::printf("Bottleneck analysis: %s\n\n", spec.describe().c_str());

    const ExperimentRunner runner(spec);
    const ExperimentResult result = runner.run();

    const auto entries = model_kernels(
        result.data, result.step_math_fn,
        {aggregation::Metric::Time, aggregation::Metric::Visits,
         aggregation::Metric::Bytes});
    std::printf("created %zu kernel models from %zu modelable kernels\n\n",
                entries.size(),
                result.data.modelable_kernels().size());

    // Rank runtime models by growth trend - the kernels that will become
    // the bottleneck at scale come first.
    std::vector<analysis::NamedModel> runtime_models;
    for (const auto& e : entries) {
        if (e.metric == aggregation::Metric::Time) {
            runtime_models.push_back({e.name, e.model.train_step_model()});
        }
    }
    const double target = 256.0;  // 64 nodes
    const auto ranked = analysis::rank_by_growth(runtime_models, target);
    Table growth({"kernel", "growth", "per-step time @256 ranks"});
    for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
        growth.add_row({ranked[i].name, ranked[i].growth,
                        fmtx::seconds(ranked[i].predicted_at_target)});
    }
    std::printf("top kernels by asymptotic growth (Sec. 3.1):\n%s\n",
                growth.to_string().c_str());

    // Speedup and efficiency models of the whole application (Eqs. 11-13).
    std::vector<double> xs;
    std::vector<double> runtimes;
    for (const double x : result.modeling_xs) {
        xs.push_back(x);
        runtimes.push_back(result.epoch_time.evaluate(x));
    }
    const auto speedup_model = analysis::model_speedup(xs, runtimes);
    const auto efficiency_model = analysis::model_efficiency(xs, runtimes);
    std::printf("speedup model (Eq. 12):     %s\n",
                speedup_model.to_string().c_str());
    std::printf("efficiency model (Sec. 3.2): %s\n\n",
                efficiency_model.to_string().c_str());

    // Other metrics: visits and transferred bytes per epoch at scale.
    Table metrics({"kernel", "metric", "predicted @256 ranks"});
    int shown = 0;
    for (const auto& e : entries) {
        if (e.metric == aggregation::Metric::Time) continue;
        const double v = e.model.evaluate(target);
        if (v <= 0.0) continue;
        metrics.add_row({e.name, std::string(aggregation::metric_name(e.metric)),
                         e.metric == aggregation::Metric::Bytes
                             ? fmtx::bytes(v)
                             : fmtx::count(static_cast<std::int64_t>(v))});
        if (++shown >= 10) break;
    }
    std::printf("per-epoch visit/byte predictions:\n%s", metrics.to_string().c_str());
    return 0;
}
